//! An executable specification of CAPPED(c, λ).
//!
//! [`SpecCapped`] implements Algorithm 1 as literally as possible — per-bin
//! request gathering, an explicit "accept the oldest min{c − ℓ, ν}" sort,
//! loads recomputed from scratch every round, no incremental bookkeeping —
//! trading all performance for obviousness. Its purpose is *differential
//! testing*: driven with the same bin choices, the optimized
//! [`CappedProcess`](crate::process::CappedProcess) must produce an
//! identical trajectory (pool sizes, loads, waiting times). The
//! integration test `tests/spec_differential.rs` in this crate enforces
//! that on randomized runs.
//!
//! Keep this module boring. If a behavior question ever arises, this file
//! is the answer; the optimized process is the one under suspicion.

use iba_sim::process::RoundReport;

/// A ball in the specification: generation round plus a stable identity
/// (the order it entered the pool), used only for deterministic
/// tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SpecBall {
    label: u64,
    id: u64,
}

/// The reference implementation of CAPPED(c, λ) with externally supplied
/// bin choices.
///
/// # Examples
///
/// ```
/// use iba_core::spec::SpecCapped;
/// let mut spec = SpecCapped::new(4, 1, 2); // n = 4, c = 1, λn = 2
/// let report = spec.step_with_choices(&[0, 0]);
/// assert_eq!(report.accepted, 1); // bin 0 takes the older ball only
/// assert_eq!(report.pool_size, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SpecCapped {
    bins: usize,
    capacity: usize,
    batch: u64,
    pool: Vec<SpecBall>,
    queues: Vec<Vec<SpecBall>>, // FIFO: index 0 is served next
    round: u64,
    next_id: u64,
}

impl SpecCapped {
    /// Creates the specification process with `n` bins, capacity `c` and a
    /// deterministic batch of `batch` balls per round.
    ///
    /// # Panics
    ///
    /// Panics if `n = 0` or `c = 0`.
    pub fn new(bins: usize, capacity: u32, batch: u64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(capacity > 0, "capacity must be positive");
        SpecCapped {
            bins,
            capacity: capacity as usize,
            batch,
            pool: Vec::new(),
            queues: vec![Vec::new(); bins],
            round: 0,
            next_id: 0,
        }
    }

    /// Pool size `m(t)`.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Load of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn load(&self, i: usize) -> usize {
        self.queues[i].len()
    }

    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Executes one round of Algorithm 1, literally:
    ///
    /// 1. generate `batch` balls, add to pool;
    /// 2. ball `i` (in pool order, oldest first) requests `choices[i]`;
    /// 3. every bin gathers its requests, sorts them by age (ties by pool
    ///    position) and accepts the oldest `min{c − ℓ, ν}`;
    /// 4. every non-empty bin deletes its first-queued ball.
    ///
    /// # Panics
    ///
    /// Panics if `choices.len()` is not the number of pooled balls after
    /// generation.
    pub fn step_with_choices(&mut self, choices: &[usize]) -> RoundReport {
        self.round += 1;
        let round = self.round;

        // 1. Generation.
        for _ in 0..self.batch {
            self.pool.push(SpecBall {
                label: round,
                id: self.next_id,
            });
            self.next_id += 1;
        }
        assert_eq!(choices.len(), self.pool.len(), "one choice per pooled ball");
        let thrown = self.pool.len() as u64;

        // 2 + 3. Per-bin gathering and oldest-first acceptance.
        let mut requests: Vec<Vec<usize>> = vec![Vec::new(); self.bins];
        for (pool_idx, &bin) in choices.iter().enumerate() {
            assert!(bin < self.bins, "bin choice out of range");
            requests[bin].push(pool_idx);
        }
        let mut accepted_flags = vec![false; self.pool.len()];
        for (bin, reqs) in requests.iter_mut().enumerate() {
            let free = self.capacity - self.queues[bin].len();
            // Sort requests by (label, id): the oldest balls first, ties
            // broken by pool identity. (Pool order already has this
            // property, but the specification *re-derives* it rather than
            // relying on it.)
            reqs.sort_by_key(|&idx| (self.pool[idx].label, self.pool[idx].id));
            for &idx in reqs.iter().take(free) {
                accepted_flags[idx] = true;
                self.queues[bin].push(self.pool[idx]);
            }
        }
        let accepted = accepted_flags.iter().filter(|&&a| a).count() as u64;
        let survivors: Vec<SpecBall> = self
            .pool
            .iter()
            .zip(&accepted_flags)
            .filter(|&(_, &acc)| !acc)
            .map(|(&b, _)| b)
            .collect();
        self.pool = survivors;

        // 4. FIFO deletion.
        let mut waiting_times = Vec::new();
        let mut failed_deletions = 0u64;
        let mut buffered = 0u64;
        let mut max_load = 0u64;
        for q in &mut self.queues {
            if q.is_empty() {
                failed_deletions += 1;
            } else {
                let ball = q.remove(0);
                waiting_times.push(round - ball.label);
            }
            buffered += q.len() as u64;
            max_load = max_load.max(q.len() as u64);
        }

        RoundReport {
            round,
            generated: self.batch,
            thrown,
            accepted,
            deleted: waiting_times.len() as u64,
            failed_deletions,
            pool_size: self.pool.len() as u64,
            buffered,
            max_load,
            waiting_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let spec = SpecCapped::new(4, 2, 2);
        assert_eq!(spec.pool_size(), 0);
        assert_eq!(spec.round(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        SpecCapped::new(4, 0, 1);
    }

    #[test]
    fn accepts_oldest_first() {
        let mut spec = SpecCapped::new(2, 1, 2);
        // Round 1: two balls, both to bin 0 -> one accepted, one pooled.
        let r = spec.step_with_choices(&[0, 0]);
        assert_eq!(r.accepted, 1);
        assert_eq!(r.pool_size, 1);
        // Round 2: leftover (label 1) + two new (label 2), all to bin 1.
        // Only the leftover is accepted.
        let r = spec.step_with_choices(&[1, 1, 1]);
        assert_eq!(r.accepted, 1);
        assert_eq!(r.pool_size, 2);
        // The accepted leftover is served immediately: waiting time 1.
        assert_eq!(r.waiting_times, vec![1]);
    }

    #[test]
    fn fifo_service_across_rounds() {
        let mut spec = SpecCapped::new(1, 3, 1);
        // Three rounds fill bin 0's buffer; service order must be the
        // acceptance order.
        let r1 = spec.step_with_choices(&[0]);
        assert_eq!(r1.waiting_times, vec![0]); // accepted and served
        let r2 = spec.step_with_choices(&[0]);
        assert_eq!(r2.waiting_times, vec![0]);
        let r3 = spec.step_with_choices(&[0]);
        assert_eq!(r3.waiting_times, vec![0]);
    }

    #[test]
    fn report_conserves() {
        let mut spec = SpecCapped::new(3, 2, 2);
        for round in 0..20 {
            let count = spec.pool_size() + 2;
            let choices: Vec<usize> = (0..count).map(|i| (i + round) % 3).collect();
            let r = spec.step_with_choices(&choices);
            assert!(r.conserves_balls());
        }
    }
}
