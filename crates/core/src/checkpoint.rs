//! Save and resume whole simulations.
//!
//! A [`Simulation`]`<`[`CappedProcess`]`>` is a pure function of its state
//! and its RNG stream, so checkpointing both resumes a run *bit-exactly*:
//! the continued trajectory is identical to the uninterrupted one. Useful
//! for long paper-scale runs and for archiving the exact state behind a
//! published measurement.
//!
//! # Examples
//!
//! ```
//! use iba_core::checkpoint;
//! use iba_core::{CappedConfig, CappedProcess};
//! use iba_sim::{Simulation, SimRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CappedConfig::new(64, 2, 0.75)?;
//! let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(1));
//! sim.run_rounds(100);
//!
//! let bytes = checkpoint::save(&sim);
//! let mut restored = checkpoint::restore(&bytes)?;
//! // Both continuations produce the identical trajectory.
//! assert_eq!(sim.step(), restored.step());
//! # Ok(())
//! # }
//! ```

use iba_sim::codec::{CodecError, Decoder, Encoder};
use iba_sim::rng::SimRng;
use iba_sim::Simulation;

use crate::process::CappedProcess;

/// Checkpoint format tag.
const TAG: &str = "IBA1";
/// Current checkpoint format version.
const VERSION: u32 = 1;

/// Serializes a CAPPED simulation (process state + RNG stream position).
pub fn save(sim: &Simulation<CappedProcess>) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.header(TAG, VERSION);
    for word in sim.rng().state() {
        enc.u64(word);
    }
    sim.process().encode_into(&mut enc);
    enc.finish()
}

/// Restores a CAPPED simulation from checkpoint bytes.
///
/// # Errors
///
/// Returns a [`CodecError`] if the bytes are truncated, malformed, from a
/// newer format version, carry trailing garbage, or encode a state that
/// violates the process invariants.
pub fn restore(bytes: &[u8]) -> Result<Simulation<CappedProcess>, CodecError> {
    let mut dec = Decoder::new(bytes);
    dec.header(TAG, VERSION)?;
    let state = [
        dec.u64("rng state 0")?,
        dec.u64("rng state 1")?,
        dec.u64("rng state 2")?,
        dec.u64("rng state 3")?,
    ];
    if state.iter().all(|&w| w == 0) {
        return Err(CodecError::Invalid { what: "rng state" });
    }
    let rng = SimRng::from_state(state);
    let process = CappedProcess::decode_from(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(CodecError::Invalid {
            what: "trailing bytes",
        });
    }
    Ok(Simulation::new(process, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CappedConfig;
    use iba_sim::AllocationProcess;

    fn running_sim(rounds: u64) -> Simulation<CappedProcess> {
        let config = CappedConfig::new(48, 2, 0.75).expect("valid");
        let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(9));
        sim.run_rounds(rounds);
        sim
    }

    #[test]
    fn roundtrip_resumes_bit_exactly() {
        let mut original = running_sim(150);
        let bytes = save(&original);
        let mut restored = restore(&bytes).expect("restores");
        for _ in 0..100 {
            assert_eq!(original.step(), restored.step());
        }
    }

    #[test]
    fn checkpoint_preserves_counters_and_round() {
        let sim = running_sim(77);
        let restored = restore(&save(&sim)).expect("restores");
        assert_eq!(restored.process().round(), 77);
        assert_eq!(
            restored.process().total_generated(),
            sim.process().total_generated()
        );
        assert_eq!(
            restored.process().total_deleted(),
            sim.process().total_deleted()
        );
        assert_eq!(restored.process().pool_size(), sim.process().pool_size());
        assert!(restored.process().conserves_balls());
    }

    #[test]
    fn checkpoint_preserves_fault_mask_and_profile() {
        let config = CappedConfig::new(8, 2, 0.5)
            .expect("valid")
            .with_capacity_profile(vec![1, 3, 1, 3, 1, 3, 1, 3])
            .expect("valid profile");
        let mut process = CappedProcess::new(config);
        process.set_bin_offline(3, true);
        let mut sim = Simulation::new(process, SimRng::seed_from(2));
        sim.run_rounds(40);
        let mut restored = restore(&save(&sim)).expect("restores");
        assert_eq!(restored.process().offline_count(), 1);
        assert_eq!(
            restored.process().config().capacity_profile(),
            sim.process().config().capacity_profile()
        );
        for _ in 0..20 {
            assert_eq!(sim.step(), restored.step());
        }
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let sim = running_sim(10);
        let mut bytes = save(&sim);
        bytes.truncate(bytes.len() - 5);
        assert!(restore(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let sim = running_sim(10);
        let mut bytes = save(&sim);
        bytes.push(0);
        assert!(matches!(
            restore(&bytes),
            Err(CodecError::Invalid {
                what: "trailing bytes"
            })
        ));
    }

    #[test]
    fn corrupted_counter_breaks_conservation_check() {
        let sim = running_sim(10);
        let bytes = save(&sim);
        // The total_generated counter sits right after the header (4 + 4
        // bytes), the rng state (32 bytes) and the config. Rather than
        // computing the offset, flip a byte in the middle of the buffer
        // and accept any decode error.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xff;
        assert!(restore(&corrupted).is_err() || {
            // A mid-buffer flip might land in a don't-care padding-free
            // spot that still decodes — then invariants must still hold.
            let restored = restore(&corrupted).unwrap();
            restored.process().conserves_balls()
        });
    }

    #[test]
    fn wrong_tag_is_rejected() {
        assert!(restore(b"NOPE").is_err());
        assert!(restore(&[]).is_err());
    }
}
