//! Save and resume whole simulations, in memory and crash-safely on disk.
//!
//! A [`Simulation`]`<`[`CappedProcess`]`>` is a pure function of its state
//! and its RNG stream, so checkpointing both resumes a run *bit-exactly*:
//! the continued trajectory is identical to the uninterrupted one. Useful
//! for long paper-scale runs and for archiving the exact state behind a
//! published measurement.
//!
//! Three layers:
//!
//! - [`save`] / [`restore`] — bytes in memory. The payload carries a CRC32
//!   footer (see `iba_sim::codec`), so **any** single-byte corruption is
//!   rejected deterministically at restore time.
//! - [`save_to_path`] / [`load_from_path`] — crash-safe file I/O: the
//!   checkpoint is written to a temporary sibling, fsynced, and atomically
//!   renamed into place (then the directory is fsynced), so a crash at any
//!   point leaves either the old file or the new one, never a torn mix.
//! - [`Autosaver`] — periodic checkpointing with one-deep rotation
//!   (`<path>` + `<path>.prev`) and corruption fallback on load, the
//!   mechanism behind the sweep binary's `--resume`.
//!
//! # Examples
//!
//! ```
//! use iba_core::checkpoint;
//! use iba_core::{CappedConfig, CappedProcess};
//! use iba_sim::{Simulation, SimRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CappedConfig::new(64, 2, 0.75)?;
//! let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(1));
//! sim.run_rounds(100);
//!
//! let bytes = checkpoint::save(&sim);
//! let mut restored = checkpoint::restore(&bytes)?;
//! // Both continuations produce the identical trajectory.
//! assert_eq!(sim.step(), restored.step());
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use iba_sim::codec::{CodecError, Decoder, Encoder};
use iba_sim::rng::SimRng;
use iba_sim::Simulation;

use crate::process::CappedProcess;

/// Checkpoint format tag.
const TAG: &str = "IBA1";
/// Current checkpoint format version. Version 2 added per-bin live
/// capacities (fault injection can diverge them from the configured
/// profile) and the CRC32 payload footer.
const VERSION: u32 = 2;

/// Serializes a CAPPED simulation (process state + RNG stream position).
pub fn save(sim: &Simulation<CappedProcess>) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.header(TAG, VERSION);
    for word in sim.rng().state() {
        enc.u64(word);
    }
    sim.process().encode_into(&mut enc);
    enc.finish()
}

/// Restores a CAPPED simulation from checkpoint bytes.
///
/// # Errors
///
/// Returns a [`CodecError`] if the bytes are corrupted (checksum
/// mismatch), truncated, malformed, from a newer or superseded format
/// version, carry trailing garbage, or encode a state that violates the
/// process invariants.
pub fn restore(bytes: &[u8]) -> Result<Simulation<CappedProcess>, CodecError> {
    let mut dec = Decoder::new(bytes)?;
    let version = dec.header(TAG, VERSION)?;
    if version < VERSION {
        // v1 lacked per-bin capacities and the payload checksum; a v1
        // checkpoint cannot even reach this point (no CRC footer), so any
        // input claiming version 1 is not something we can trust.
        return Err(CodecError::Invalid {
            what: "superseded checkpoint version (v1 has no per-bin capacities; re-create the checkpoint)",
        });
    }
    let state = [
        dec.u64("rng state 0")?,
        dec.u64("rng state 1")?,
        dec.u64("rng state 2")?,
        dec.u64("rng state 3")?,
    ];
    if state.iter().all(|&w| w == 0) {
        return Err(CodecError::Invalid { what: "rng state" });
    }
    let rng = SimRng::from_state(state);
    let process = CappedProcess::decode_from(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(CodecError::Invalid {
            what: "trailing bytes",
        });
    }
    Ok(Simulation::new(process, rng))
}

/// Error from checkpoint file I/O: either the filesystem failed or the
/// file's contents did not decode.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem operation failed.
    Io(std::io::Error),
    /// The file was read but its contents are corrupt, malformed or from
    /// an unsupported format version.
    Codec(CodecError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint file I/O failed: {e}"),
            CheckpointError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Codec(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// Writes `bytes` to `path` crash-safely: write to a `.tmp` sibling,
/// fsync it, atomically rename over `path`, then fsync the directory so
/// the rename itself survives a power loss.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = sibling_with_suffix(path, ".tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Directory fsync is advisory on some filesystems; ignore failure
        // (the data file itself is already durable).
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn sibling_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().map(ToOwned::to_owned).unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// Crash-safe raw-bytes write — the building block behind
/// [`save_to_path`], exposed for other checkpoint-like files (e.g. the
/// sweep binary's grid-progress file): write to a `.tmp` sibling, fsync,
/// atomically rename over `path`, fsync the directory.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn write_bytes_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), CheckpointError> {
    write_atomic(path.as_ref(), bytes)
}

/// Saves a simulation to `path` crash-safely (temp file + fsync + atomic
/// rename): after a crash at any point, `path` holds either the previous
/// checkpoint or the new one in full, never a torn write.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save_to_path(
    sim: &Simulation<CappedProcess>,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    write_atomic(path.as_ref(), &save(sim))
}

/// Loads a simulation checkpoint from `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] if the file cannot be read and
/// [`CheckpointError::Codec`] if its contents are corrupt, malformed or
/// from an unsupported format version.
pub fn load_from_path(
    path: impl AsRef<Path>,
) -> Result<Simulation<CappedProcess>, CheckpointError> {
    let bytes = fs::read(path.as_ref())?;
    Ok(restore(&bytes)?)
}

/// Periodic crash-safe checkpointing with one-deep rotation.
///
/// Every `every` completed rounds, [`tick`](Self::tick) rotates the
/// current checkpoint to `<path>.prev` and writes a fresh one to `<path>`
/// (both steps atomic renames). [`load_latest`](Self::load_latest) prefers
/// `<path>` and falls back to `<path>.prev` when the newest file is
/// missing or corrupt, so a crash mid-save costs at most one autosave
/// interval of progress.
#[derive(Debug, Clone)]
pub struct Autosaver {
    path: PathBuf,
    every: u64,
}

impl Autosaver {
    /// Creates an autosaver writing to `path` every `every` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn new(path: impl Into<PathBuf>, every: u64) -> Self {
        assert!(every > 0, "autosave interval must be at least one round");
        Autosaver {
            path: path.into(),
            every,
        }
    }

    /// The primary checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotation path holding the previous checkpoint.
    pub fn prev_path(&self) -> PathBuf {
        sibling_with_suffix(&self.path, ".prev")
    }

    /// Saves if the simulation's round count is a multiple of the
    /// interval; returns whether a checkpoint was written.
    ///
    /// # Errors
    ///
    /// Propagates [`save_now`](Self::save_now) failures.
    pub fn tick(&self, sim: &Simulation<CappedProcess>) -> Result<bool, CheckpointError> {
        use iba_sim::AllocationProcess;
        let round = sim.process().round();
        if round > 0 && round.is_multiple_of(self.every) {
            self.save_now(sim)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Rotates the current checkpoint (if any) to `.prev` and writes a
    /// fresh one, both crash-safely.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save_now(&self, sim: &Simulation<CappedProcess>) -> Result<(), CheckpointError> {
        if self.path.exists() {
            fs::rename(&self.path, self.prev_path())?;
        }
        save_to_path(sim, &self.path)
    }

    /// Loads the newest usable checkpoint: `<path>` first, then
    /// `<path>.prev` if the primary is missing or fails to decode.
    ///
    /// # Errors
    ///
    /// If both files are unusable, returns the **primary** file's error
    /// (the more informative one: the fallback usually just doesn't
    /// exist).
    pub fn load_latest(&self) -> Result<Simulation<CappedProcess>, CheckpointError> {
        match load_from_path(&self.path) {
            Ok(sim) => Ok(sim),
            Err(primary_err) => load_from_path(self.prev_path()).map_err(|_| primary_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Capacity, CappedConfig};
    use iba_sim::AllocationProcess;

    fn running_sim(rounds: u64) -> Simulation<CappedProcess> {
        let config = CappedConfig::new(48, 2, 0.75).expect("valid");
        let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(9));
        sim.run_rounds(rounds);
        sim
    }

    /// Unique-per-test scratch directory (no tempfile dependency).
    fn scratch_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iba-ckpt-{}-{test}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn roundtrip_resumes_bit_exactly() {
        let mut original = running_sim(150);
        let bytes = save(&original);
        let mut restored = restore(&bytes).expect("restores");
        for _ in 0..100 {
            assert_eq!(original.step(), restored.step());
        }
    }

    #[test]
    fn checkpoint_preserves_counters_and_round() {
        let sim = running_sim(77);
        let restored = restore(&save(&sim)).expect("restores");
        assert_eq!(restored.process().round(), 77);
        assert_eq!(
            restored.process().total_generated(),
            sim.process().total_generated()
        );
        assert_eq!(
            restored.process().total_deleted(),
            sim.process().total_deleted()
        );
        assert_eq!(restored.process().pool_size(), sim.process().pool_size());
        assert!(restored.process().conserves_balls());
    }

    #[test]
    fn checkpoint_preserves_fault_mask_and_profile() {
        let config = CappedConfig::new(8, 2, 0.5)
            .expect("valid")
            .with_capacity_profile(vec![1, 3, 1, 3, 1, 3, 1, 3])
            .expect("valid profile");
        let mut process = CappedProcess::new(config);
        process.set_bin_offline(3, true);
        let mut sim = Simulation::new(process, SimRng::seed_from(2));
        sim.run_rounds(40);
        let mut restored = restore(&save(&sim)).expect("restores");
        assert_eq!(restored.process().offline_count(), 1);
        assert_eq!(
            restored.process().config().capacity_profile(),
            sim.process().config().capacity_profile()
        );
        for _ in 0..20 {
            assert_eq!(sim.step(), restored.step());
        }
    }

    #[test]
    fn checkpoint_preserves_degraded_live_capacities() {
        // Fault injection diverges live capacities from the configured
        // profile; format v2 must round-trip them, including a bin left
        // over its (lowered) capacity.
        let mut sim = running_sim(60);
        sim.process_mut()
            .set_bin_capacity(0, Capacity::finite(1).unwrap());
        sim.process_mut().set_bin_capacity(1, Capacity::Infinite);
        let mut restored = restore(&save(&sim)).expect("restores");
        assert_eq!(
            restored.process().bin(0).capacity(),
            Capacity::finite(1).unwrap()
        );
        assert_eq!(restored.process().bin(1).capacity(), Capacity::Infinite);
        for _ in 0..50 {
            assert_eq!(sim.step(), restored.step());
        }
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let sim = running_sim(10);
        let mut bytes = save(&sim);
        bytes.truncate(bytes.len() - 5);
        assert!(restore(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let sim = running_sim(10);
        let mut bytes = save(&sim);
        // Append a byte *inside* the checksummed payload boundary: any
        // naive append lands after the footer and already fails the CRC,
        // so re-seal a payload that legitimately carries an extra byte.
        bytes.truncate(bytes.len() - 4);
        bytes.push(0);
        let crc = iba_sim::codec::crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            restore(&bytes),
            Err(CodecError::Invalid {
                what: "trailing bytes"
            })
        ));
    }

    #[test]
    fn corrupted_counter_breaks_conservation_check() {
        // Deterministic, exhaustive corruption detection: flipping any
        // single byte anywhere in the checkpoint — header, RNG state,
        // counters, pool, bin queues, fault mask or footer — must be
        // rejected outright by the CRC32 footer. No probabilistic
        // "hopefully some invariant catches it".
        let sim = running_sim(25);
        let bytes = save(&sim);
        assert!(restore(&bytes).is_ok());
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xff;
            assert!(
                matches!(
                    restore(&corrupted),
                    Err(CodecError::ChecksumMismatch { .. })
                ),
                "byte flip at offset {i} was not rejected"
            );
        }
    }

    #[test]
    fn future_version_is_rejected_with_actionable_error() {
        // A checkpoint written by a hypothetical newer binary: valid CRC,
        // valid tag, version VERSION + 1.
        let mut enc = Encoder::new();
        enc.header(TAG, VERSION + 1);
        enc.u64(123);
        let bytes = enc.finish();
        match restore(&bytes) {
            Err(CodecError::FutureVersion {
                tag,
                found,
                max_supported,
            }) => {
                assert_eq!(tag, TAG);
                assert_eq!(found, VERSION + 1);
                assert_eq!(max_supported, VERSION);
                let msg = CodecError::FutureVersion {
                    tag,
                    found,
                    max_supported,
                }
                .to_string();
                assert!(msg.contains("newer format revision"), "unhelpful: {msg}");
                assert!(msg.contains("upgrade the binary"), "unhelpful: {msg}");
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }
    }

    #[test]
    fn superseded_version_is_rejected() {
        let mut enc = Encoder::new();
        enc.header(TAG, 1);
        enc.u64(123);
        let bytes = enc.finish();
        assert!(matches!(
            restore(&bytes),
            Err(CodecError::Invalid { what }) if what.contains("superseded")
        ));
    }

    #[test]
    fn wrong_tag_is_rejected() {
        assert!(restore(b"NOPE").is_err());
        assert!(restore(&[]).is_err());
    }

    #[test]
    fn file_roundtrip_resumes_bit_exactly() {
        let dir = scratch_dir("file-roundtrip");
        let path = dir.join("state.ckpt");
        let mut original = running_sim(90);
        save_to_path(&original, &path).expect("saves");
        assert!(!sibling_with_suffix(&path, ".tmp").exists(), "tmp cleaned");
        let mut restored = load_from_path(&path).expect("loads");
        for _ in 0..60 {
            assert_eq!(original.step(), restored.step());
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn load_from_missing_path_is_io_error() {
        let dir = scratch_dir("missing");
        match load_from_path(dir.join("nope.ckpt")) {
            Err(CheckpointError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
            }
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn autosaver_ticks_on_interval_and_rotates() {
        let dir = scratch_dir("autosave");
        let saver = Autosaver::new(dir.join("run.ckpt"), 10);
        let config = CappedConfig::new(32, 2, 0.75).expect("valid");
        let mut sim = Simulation::new(CappedProcess::new(config), SimRng::seed_from(4));
        let mut saves = 0;
        for _ in 0..25 {
            sim.step();
            if saver.tick(&sim).expect("tick") {
                saves += 1;
            }
        }
        assert_eq!(saves, 2, "rounds 10 and 20");
        assert!(saver.path().exists());
        assert!(saver.prev_path().exists(), "rotation keeps the previous");
        // Latest checkpoint is round 20; .prev is round 10.
        let latest = saver.load_latest().expect("loads");
        assert_eq!(latest.process().round(), 20);
        let prev = load_from_path(saver.prev_path()).expect("loads prev");
        assert_eq!(prev.process().round(), 10);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn autosaver_falls_back_to_previous_on_corruption() {
        let dir = scratch_dir("fallback");
        let saver = Autosaver::new(dir.join("run.ckpt"), 1);
        let mut sim = running_sim(0);
        sim.step();
        saver.save_now(&sim).expect("first save");
        sim.step();
        saver.save_now(&sim).expect("second save");
        // Corrupt the newest checkpoint (simulating a torn disk).
        let mut bytes = fs::read(saver.path()).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(saver.path(), &bytes).expect("write corrupt");
        let recovered = saver.load_latest().expect("falls back to .prev");
        assert_eq!(recovered.process().round(), 1);
        // With the fallback also gone, the primary's error surfaces.
        fs::remove_file(saver.prev_path()).expect("remove prev");
        assert!(matches!(
            saver.load_latest(),
            Err(CheckpointError::Codec(CodecError::ChecksumMismatch { .. }))
        ));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn autosaver_rejects_zero_interval() {
        let _ = Autosaver::new("x.ckpt", 0);
    }
}
