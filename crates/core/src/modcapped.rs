//! The MODCAPPED(c, λ) companion process (Sections III-A and IV-A).
//!
//! MODCAPPED differs from CAPPED in two ways that make the paper's analysis
//! tractable:
//!
//! 1. **Inflated generation.** Instead of `λn` balls, round `t` generates
//!    `max{λn, m* − m(t−1)}` balls, guaranteeing at least `m*` balls are
//!    thrown every round (`m*` from Section III for `c = 1` and from
//!    Section IV-A for general `c`).
//! 2. **Phase-structured buffers.** Time is partitioned into phases
//!    `I_j = [c·j, c·(j+1)−1]` and each bin's capacity is split between two
//!    overlapping *buffers* per Eq. (5): buffer `j` ramps up from 0 to `c`
//!    during phase `j−1` and back down to 0 during phase `j`. Exactly two
//!    buffers are active at any round and their capacities sum to `c`.
//!    Every ball carries a red/blue *preference* (⌈ν/2⌉ red, ⌊ν/2⌋ blue) and
//!    each bin assigns its requests to buffers maximizing the number of
//!    satisfied preferences; the deleting buffer serves one ball per round.
//!
//! ### A note on the red/blue naming
//!
//! The paper's prose calls `⌈t/c⌉` the *red* (deleting) buffer. However,
//! the proof of Lemma 7 requires that buffer `j` deletes exactly during
//! phase `I_j` — and during `I_j` the ramping-**down** buffer is
//! `⌊t/c⌋`, not `⌈t/c⌉` (the two coincide only at phase boundaries). We
//! implement the proof-consistent semantics: **the deleting ("red") buffer
//! at round `t` is `⌊t/c⌋`**, whose capacity `(⌊t/c⌋+1)·c − t` equals the
//! number of deletion opportunities it has left, so every accepted ball is
//! deleted before its buffer expires — exactly the property Lemma 7's
//! counting argument uses. For `c = 1` both conventions coincide and the
//! process reduces to the Section-III MODCAPPED.

use std::collections::VecDeque;

use iba_sim::error::ConfigError;
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;

use crate::ball::Ball;
use crate::pool::Pool;

/// The MODCAPPED(c, λ) process.
///
/// # Examples
///
/// ```
/// use iba_core::ModCappedProcess;
/// use iba_sim::{AllocationProcess, SimRng};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let mut p = ModCappedProcess::new(256, 2, 0.75)?;
/// let mut rng = SimRng::seed_from(3);
/// let report = p.step(&mut rng);
/// // The first round throws at least m* balls.
/// assert!(report.thrown >= p.m_star() as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModCappedProcess {
    bins: usize,
    capacity: u32,
    lambda: f64,
    batch: u64,
    m_star: usize,
    pool: Pool,
    /// Deleting buffers (one per bin): buffer `⌊t/c⌋`, ramping down.
    reds: Vec<VecDeque<Ball>>,
    /// Filling buffers (one per bin): buffer `⌊t/c⌋ + 1`, ramping up.
    blues: Vec<VecDeque<Ball>>,
    round: u64,
    total_generated: u64,
    total_deleted: u64,
    scratch: Vec<Ball>,
}

/// The Section-III threshold `m* = ln(1/(1−λ))·n + 2n` for unit capacity.
pub fn m_star_unit(n: usize, lambda: f64) -> usize {
    let n_f = n as f64;
    ((1.0 / (1.0 - lambda)).ln() * n_f + 2.0 * n_f).ceil() as usize
}

/// The Section-IV threshold `m* = 2c⁻¹·ln(1/(1−λ))·n + 6c·n` for general
/// capacity.
pub fn m_star_general(n: usize, c: u32, lambda: f64) -> usize {
    let n_f = n as f64;
    let c_f = c as f64;
    ((2.0 / c_f) * (1.0 / (1.0 - lambda)).ln() * n_f + 6.0 * c_f * n_f).ceil() as usize
}

impl ModCappedProcess {
    /// Creates a MODCAPPED(c, λ) process with the paper's `m*`:
    /// the Section-III value for `c = 1`, the Section-IV value otherwise.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n = 0`, `c = 0`, `λ ∉ [0, 1 − 1/n]` or
    /// `λn ∉ ℕ`.
    pub fn new(bins: usize, capacity: u32, lambda: f64) -> Result<Self, ConfigError> {
        let m_star = if capacity == 1 {
            m_star_unit(bins, lambda)
        } else {
            m_star_general(bins, capacity, lambda)
        };
        Self::with_m_star(bins, capacity, lambda, m_star)
    }

    /// Creates a MODCAPPED(c, λ) process with a custom threshold `m*`
    /// (useful for exploring how the coupling slack depends on `m*`).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on the same invalid inputs as
    /// [`ModCappedProcess::new`].
    pub fn with_m_star(
        bins: usize,
        capacity: u32,
        lambda: f64,
        m_star: usize,
    ) -> Result<Self, ConfigError> {
        if bins == 0 {
            return Err(ConfigError::ZeroBins);
        }
        if capacity == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        let arrivals = iba_sim::arrivals::ArrivalModel::deterministic_rate(bins, lambda)?;
        let batch = match arrivals {
            iba_sim::arrivals::ArrivalModel::Deterministic { batch } => batch,
            _ => unreachable!("deterministic_rate returns Deterministic"),
        };
        Ok(ModCappedProcess {
            bins,
            capacity,
            lambda,
            batch,
            m_star,
            pool: Pool::with_capacity(2 * m_star),
            reds: (0..bins).map(|_| VecDeque::new()).collect(),
            blues: (0..bins).map(|_| VecDeque::new()).collect(),
            round: 0,
            total_generated: 0,
            total_deleted: 0,
            scratch: Vec::new(),
        })
    }

    /// The threshold `m*` this process maintains.
    pub fn m_star(&self) -> usize {
        self.m_star
    }

    /// The injection rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Buffer capacity `c`.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Capacity of the deleting (red) buffer in round `t`:
    /// `(⌊t/c⌋+1)·c − t` (Eq. 5 evaluated for the ramping-down buffer).
    pub fn red_capacity_at(&self, t: u64) -> u64 {
        let c = self.capacity as u64;
        (t / c + 1) * c - t
    }

    /// Capacity of the filling (blue) buffer in round `t`: `t − ⌊t/c⌋·c`.
    pub fn blue_capacity_at(&self, t: u64) -> u64 {
        let c = self.capacity as u64;
        t - (t / c) * c
    }

    /// Total load of bin `i` across both active buffers.
    pub fn load(&self, i: usize) -> usize {
        self.reds[i].len() + self.blues[i].len()
    }

    /// Total loads of all bins.
    pub fn loads(&self) -> Vec<usize> {
        (0..self.bins).map(|i| self.load(i)).collect()
    }

    /// Total number of buffered balls across all bins.
    pub fn buffered(&self) -> usize {
        (0..self.bins).map(|i| self.load(i)).sum()
    }

    /// Number of balls the next round will generate,
    /// `max{λn, m* − m(t−1)}`.
    pub fn next_generation(&self) -> u64 {
        self.batch
            .max(self.m_star.saturating_sub(self.pool.len()) as u64)
    }

    /// Number of balls the next round will throw (pool + generation).
    /// Used by the coupled runner to size the shared choice vector.
    pub fn next_throw_count(&self) -> usize {
        self.pool.len() + self.next_generation() as usize
    }

    /// Ball-conservation invariant.
    pub fn conserves_balls(&self) -> bool {
        self.total_generated == self.total_deleted + self.pool.len() as u64 + self.buffered() as u64
    }

    /// Checks the Eq.-5 structural invariants: per-buffer loads within the
    /// current capacities and per-bin totals within `c`. (The capacities
    /// queried are those of the *last completed* round.)
    pub fn check_buffer_invariants(&self) -> bool {
        if self.round == 0 {
            return self.buffered() == 0;
        }
        let red_cap = self.red_capacity_at(self.round) as usize;
        let blue_cap = self.blue_capacity_at(self.round) as usize;
        self.reds.iter().zip(&self.blues).all(|(r, b)| {
            // After the end-of-round deletion the red buffer may hold up to
            // its capacity minus the deletion it just performed; being
            // within capacity is the invariant Lemma 7 relies on.
            r.len() <= red_cap && b.len() <= blue_cap && r.len() + b.len() <= self.capacity as usize
        })
    }

    /// Executes one round with pre-drawn bin choices (`choices[i]` for the
    /// i-th thrown ball, oldest first). Hook for the Lemma-1/6 coupling.
    ///
    /// # Panics
    ///
    /// Panics if `choices.len()` differs from
    /// [`next_throw_count`](Self::next_throw_count).
    pub fn step_with_choices(&mut self, choices: &[usize]) -> RoundReport {
        assert_eq!(
            choices.len(),
            self.next_throw_count(),
            "need exactly one choice per thrown ball"
        );
        let generated = self.next_generation();
        self.run_round_inner(generated, &mut |i| choices[i])
    }

    fn run_round_inner(
        &mut self,
        generated: u64,
        choose: &mut dyn FnMut(usize) -> usize,
    ) -> RoundReport {
        let c = self.capacity as u64;
        self.round += 1;
        let t = self.round;

        // Phase transition: when ⌊t/c⌋ advances, the old red buffer has
        // expired (it must be empty — it deleted its last ball at capacity
        // 1) and the old blue buffer becomes the new red.
        if t.is_multiple_of(c) {
            debug_assert!(
                self.reds.iter().all(VecDeque::is_empty),
                "expiring red buffers must be empty at a phase boundary"
            );
            std::mem::swap(&mut self.reds, &mut self.blues);
        }
        let red_cap = self.red_capacity_at(t) as usize;
        let blue_cap = self.blue_capacity_at(t) as usize;

        // 1. Inflated ball generation.
        self.pool.push_generation(t, generated);
        self.total_generated += generated;
        let thrown = self.pool.len();

        // 2. Preferences: the first ⌈ν/2⌉ balls (oldest half) prefer red.
        let red_pref_count = thrown.div_ceil(2);

        // 3. Allocation, pass A: satisfy preferences greedily (this attains
        //    the maximum number of satisfied preferences, since within a
        //    preference class slots are interchangeable). Overflow balls are
        //    retried cross-color in pass B using leftover capacity only.
        let mut balls = self.pool.take();
        let mut overflow: Vec<(Ball, usize, bool)> = Vec::new();
        let mut accepted = 0u64;
        for (i, ball) in balls.drain(..).enumerate() {
            let bin = choose(i);
            debug_assert!(bin < self.bins, "bin choice out of range");
            let prefers_red = i < red_pref_count;
            let target = if prefers_red {
                &mut self.reds[bin]
            } else {
                &mut self.blues[bin]
            };
            let target_cap = if prefers_red { red_cap } else { blue_cap };
            if target.len() < target_cap {
                target.push_back(ball);
                accepted += 1;
            } else {
                overflow.push((ball, bin, prefers_red));
            }
        }
        let mut rejected = std::mem::take(&mut self.scratch);
        rejected.clear();
        for (ball, bin, prefers_red) in overflow {
            let other = if prefers_red {
                &mut self.blues[bin]
            } else {
                &mut self.reds[bin]
            };
            let other_cap = if prefers_red { blue_cap } else { red_cap };
            if other.len() < other_cap {
                other.push_back(ball);
                accepted += 1;
            } else {
                rejected.push(ball);
            }
        }
        self.scratch = balls;
        self.pool.restore(rejected);

        // 4. Deletion: every non-empty red buffer serves one ball.
        let mut waiting_times = Vec::with_capacity(self.bins);
        let mut failed_deletions = 0u64;
        let mut buffered = 0u64;
        let mut max_load = 0u64;
        for (red, blue) in self.reds.iter_mut().zip(&self.blues) {
            match red.pop_front() {
                Some(ball) => {
                    waiting_times.push(ball.age_at(t));
                    self.total_deleted += 1;
                }
                None => failed_deletions += 1,
            }
            let load = (red.len() + blue.len()) as u64;
            buffered += load;
            max_load = max_load.max(load);
        }

        RoundReport {
            round: t,
            generated,
            thrown: thrown as u64,
            accepted,
            deleted: waiting_times.len() as u64,
            failed_deletions,
            pool_size: self.pool.len() as u64,
            buffered,
            max_load,
            waiting_times,
        }
    }
}

impl AllocationProcess for ModCappedProcess {
    fn bins(&self) -> usize {
        self.bins
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn pool_size(&self) -> usize {
        self.pool.len()
    }

    fn step(&mut self, rng: &mut SimRng) -> RoundReport {
        let generated = self.next_generation();
        let n = self.bins;
        self.run_round_inner(generated, &mut |_| rng.uniform_bin(n))
    }

    fn label(&self) -> String {
        format!(
            "modcapped(n={}, c={}, λ={})",
            self.bins, self.capacity, self.lambda
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_star_formulas_match_paper() {
        // Section III: ln(1/(1-λ))·n + 2n with λ = 0.75, n = 1000:
        // ln 4 ≈ 1.3863 → 1386.3 + 2000 → ⌈3386.3⌉ = 3387.
        assert_eq!(m_star_unit(1000, 0.75), 3387);
        // Section IV with c = 2: (2/2)·ln4·n + 12n = 1386.3 + 12000 → 13387.
        assert_eq!(m_star_general(1000, 2, 0.75), 13387);
        // λ = 0 degenerates to the additive term.
        assert_eq!(m_star_unit(100, 0.0), 200);
        assert_eq!(m_star_general(100, 3, 0.0), 1800);
    }

    #[test]
    fn construction_validates() {
        assert!(ModCappedProcess::new(0, 1, 0.5).is_err());
        assert!(ModCappedProcess::new(10, 0, 0.5).is_err());
        assert!(ModCappedProcess::new(10, 1, 0.33).is_err());
        assert!(ModCappedProcess::new(10, 1, 0.5).is_ok());
    }

    #[test]
    fn throws_at_least_m_star_every_round() {
        let mut p = ModCappedProcess::new(64, 2, 0.75).unwrap();
        let m_star = p.m_star() as u64;
        let mut rng = SimRng::seed_from(1);
        for _ in 0..30 {
            let r = p.step(&mut rng);
            assert!(r.thrown >= m_star, "thrown {} < m* {m_star}", r.thrown);
        }
    }

    #[test]
    fn generation_tops_up_to_m_star() {
        let p = ModCappedProcess::new(64, 1, 0.5).unwrap();
        // Empty pool: generation = max(λn, m*) = m*.
        assert_eq!(p.next_generation(), p.m_star() as u64);
        assert_eq!(p.next_throw_count(), p.m_star());
    }

    #[test]
    fn capacities_follow_eq5() {
        let p = ModCappedProcess::new(8, 4, 0.75).unwrap();
        // c = 4. At t = 1: red cap 3, blue cap 1. At t = 4: red 4, blue 0.
        assert_eq!(p.red_capacity_at(1), 3);
        assert_eq!(p.blue_capacity_at(1), 1);
        assert_eq!(p.red_capacity_at(3), 1);
        assert_eq!(p.blue_capacity_at(3), 3);
        assert_eq!(p.red_capacity_at(4), 4);
        assert_eq!(p.blue_capacity_at(4), 0);
        // Capacities always sum to c.
        for t in 1..40 {
            assert_eq!(p.red_capacity_at(t) + p.blue_capacity_at(t), 4);
        }
    }

    #[test]
    fn unit_capacity_reduces_to_section_three() {
        let p = ModCappedProcess::new(128, 1, 0.5).unwrap();
        assert_eq!(p.m_star(), m_star_unit(128, 0.5));
        // c = 1: blue capacity is always 0, red always 1.
        for t in 1..20 {
            assert_eq!(p.red_capacity_at(t), 1);
            assert_eq!(p.blue_capacity_at(t), 0);
        }
    }

    #[test]
    fn invariants_hold_over_many_rounds() {
        for c in [1u32, 2, 3, 5] {
            let mut p = ModCappedProcess::new(64, c, 0.75).unwrap();
            let mut rng = SimRng::seed_from(c as u64);
            for _ in 0..200 {
                let r = p.step(&mut rng);
                assert!(p.check_buffer_invariants(), "c={c} round={}", r.round);
                assert!(p.conserves_balls(), "c={c}");
                assert!(r.conserves_balls(), "c={c}");
                assert!(r.max_load <= c as u64);
            }
        }
    }

    #[test]
    fn pool_stays_below_twice_m_star_whp() {
        // Lemma 7: the pool exceeds 2m* only with probability 2^{-2n}.
        // Over a short run it should never happen.
        let mut p = ModCappedProcess::new(128, 2, 0.75).unwrap();
        let bound = 2 * p.m_star() as u64;
        let mut rng = SimRng::seed_from(5);
        for _ in 0..300 {
            let r = p.step(&mut rng);
            assert!(r.pool_size < bound, "pool {} >= 2m* {bound}", r.pool_size);
        }
    }

    #[test]
    fn step_with_choices_is_deterministic() {
        let mut a = ModCappedProcess::new(16, 2, 0.75).unwrap();
        let mut b = ModCappedProcess::new(16, 2, 0.75).unwrap();
        let count = a.next_throw_count();
        let choices: Vec<usize> = (0..count).map(|i| i % 16).collect();
        let ra = a.step_with_choices(&choices);
        let rb = b.step_with_choices(&choices);
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "one choice per thrown ball")]
    fn step_with_choices_wrong_len_panics() {
        let mut p = ModCappedProcess::new(16, 2, 0.75).unwrap();
        p.step_with_choices(&[0, 1]);
    }

    #[test]
    fn cross_color_fill_uses_leftover_capacity_only() {
        // c = 2, round 1: red cap 1, blue cap 1 per bin. Send 4 balls to
        // bin 0 (2 red-pref, 2 blue-pref): exactly 2 accepted.
        let mut p = ModCappedProcess::with_m_star(4, 2, 0.5, 4).unwrap();
        assert_eq!(p.next_throw_count(), 4);
        let r = p.step_with_choices(&[0, 0, 0, 0]);
        assert_eq!(r.accepted, 2);
        assert_eq!(r.pool_size, 2);
        assert_eq!(p.load(0), 1); // one deleted from red
    }

    #[test]
    fn label_mentions_parameters() {
        let p = ModCappedProcess::new(8, 2, 0.75).unwrap();
        let l = AllocationProcess::label(&p);
        assert!(l.contains("modcapped") && l.contains("c=2"));
    }
}
