//! Point-in-time system snapshots and derived metrics.

use std::fmt;

use iba_sim::stats::Histogram;

use crate::process::CappedProcess;

/// Exact waiting-time quantile summary (p50/p99/p999) computed from a
/// recorded [`Histogram`] — order statistics over every observation, not a
/// sampled sketch, so two runs over the same trajectory report identical
/// quantiles.
///
/// Used by the bench reports and the `iba-serve` live metrics export.
///
/// # Examples
///
/// ```
/// use iba_core::metrics::WaitQuantiles;
/// use iba_sim::stats::Histogram;
///
/// let hist: Histogram = (0..1000).collect();
/// let q = WaitQuantiles::from_histogram(&hist).unwrap();
/// assert_eq!(q.p50, 499);
/// assert_eq!(q.p99, 989);
/// assert_eq!(q.p999, 998);
/// assert_eq!(q.max, 999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitQuantiles {
    /// Number of recorded waiting times.
    pub count: u64,
    /// Mean waiting time in rounds.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest observed waiting time.
    pub max: u64,
}

impl WaitQuantiles {
    /// Computes the summary from a waiting-time histogram. Returns `None`
    /// for an empty histogram (no balls served yet).
    ///
    /// Every quantile is propagated with `?` rather than unwrapped: the
    /// live scrape path can observe a histogram that is drained or reset
    /// between the emptiness check and the quantile reads (e.g. a snapshot
    /// raced against a counter reset), and a scrape must degrade to `None`
    /// rather than panic the service.
    pub fn from_histogram(hist: &Histogram) -> Option<Self> {
        let max = hist.max()?;
        Some(WaitQuantiles {
            count: hist.count(),
            mean: hist.mean(),
            p50: hist.quantile(0.5)?,
            p99: hist.quantile(0.99)?,
            p999: hist.quantile(0.999)?,
            max,
        })
    }
}

impl fmt::Display for WaitQuantiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={} p99={} p999={} max={}",
            self.count, self.mean, self.p50, self.p99, self.p999, self.max
        )
    }
}

/// A point-in-time snapshot of a CAPPED system's state, as used by the
/// examples and the self-stabilization experiment to narrate recovery.
///
/// # Examples
///
/// ```
/// use iba_core::{CappedConfig, CappedProcess};
/// use iba_core::metrics::SystemSnapshot;
/// use iba_sim::{AllocationProcess, SimRng};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let mut p = CappedProcess::new(CappedConfig::new(64, 2, 0.75)?);
/// let mut rng = SimRng::seed_from(5);
/// for _ in 0..50 { p.step(&mut rng); }
/// let snap = SystemSnapshot::capture(&p);
/// assert_eq!(snap.round, 50);
/// assert!(snap.normalized_pool >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSnapshot {
    /// Round at which the snapshot was taken.
    pub round: u64,
    /// Pool size `m(t)`.
    pub pool_size: usize,
    /// Pool size divided by `n` (the paper's normalized pool size).
    pub normalized_pool: f64,
    /// Total balls in bin buffers.
    pub buffered: usize,
    /// Histogram of bin loads.
    pub load_histogram: Histogram,
    /// Histogram of pooled-ball ages.
    pub age_histogram: Histogram,
    /// Age of the oldest pooled ball, if any.
    pub oldest_pooled_age: Option<u64>,
}

impl SystemSnapshot {
    /// Captures the current state of `process`.
    pub fn capture(process: &CappedProcess) -> Self {
        let round = iba_sim::AllocationProcess::round(process);
        let n = process.config().bins();
        let pool_size = process.pool().len();
        let age_histogram = process.pool().age_histogram(round);
        SystemSnapshot {
            round,
            pool_size,
            normalized_pool: pool_size as f64 / n as f64,
            buffered: process.buffered(),
            load_histogram: process.load_histogram(),
            age_histogram,
            oldest_pooled_age: process.pool().oldest_label().map(|l| round - l),
        }
    }

    /// Total balls in the system (pool + buffers).
    pub fn system_load(&self) -> usize {
        self.pool_size + self.buffered
    }

    /// Fraction of bins that are completely full (load = c). Returns 0 when
    /// the capacity is infinite or the snapshot has no bins.
    pub fn full_bin_fraction(&self, capacity: u32) -> f64 {
        let total = self.load_histogram.count();
        if total == 0 {
            return 0.0;
        }
        self.load_histogram.count_at(capacity as u64) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CappedConfig;
    use iba_sim::rng::SimRng;

    #[test]
    fn wait_quantiles_empty_histogram_is_none() {
        assert_eq!(WaitQuantiles::from_histogram(&Histogram::new()), None);
    }

    #[test]
    fn wait_quantiles_degrade_to_none_instead_of_panicking() {
        // A drained/reset histogram (the live scrape path can race one)
        // must flow through every quantile as None — no expect/panic.
        let mut hist: Histogram = [3u64, 5, 7].into_iter().collect();
        assert!(WaitQuantiles::from_histogram(&hist).is_some());
        let taken = std::mem::take(&mut hist); // "concurrent reset"
        assert_eq!(taken.count(), 3);
        assert_eq!(WaitQuantiles::from_histogram(&hist), None);
        // Boundary: a single observation still defines all quantiles.
        let one: Histogram = [0u64].into_iter().collect();
        let q = WaitQuantiles::from_histogram(&one).unwrap();
        assert_eq!((q.p50, q.p99, q.p999, q.max), (0, 0, 0, 0));
    }

    #[test]
    fn wait_quantiles_are_exact_order_statistics() {
        // 1000 observations of value v for v in 0..10 — every quantile is
        // exactly determined.
        let mut hist = Histogram::new();
        for v in 0..10 {
            hist.record_n(v, 1000);
        }
        let q = WaitQuantiles::from_histogram(&hist).unwrap();
        assert_eq!(q.count, 10_000);
        assert_eq!(q.p50, 4);
        assert_eq!(q.p99, 9);
        assert_eq!(q.p999, 9);
        assert_eq!(q.max, 9);
        assert!((q.mean - 4.5).abs() < 1e-12);
    }

    #[test]
    fn wait_quantiles_tail_sensitivity() {
        // 9989 zeros + 11 large values: p99 stays 0, p999 catches the tail.
        let mut hist = Histogram::new();
        hist.record_n(0, 9_989);
        hist.record_n(40, 11);
        let q = WaitQuantiles::from_histogram(&hist).unwrap();
        assert_eq!(q.p50, 0);
        assert_eq!(q.p99, 0);
        assert_eq!(q.p999, 40);
        assert_eq!(q.max, 40);
    }

    #[test]
    fn wait_quantiles_display_is_compact() {
        let hist: Histogram = [1, 2, 3].into_iter().collect();
        let q = WaitQuantiles::from_histogram(&hist).unwrap();
        let s = q.to_string();
        assert!(s.contains("n=3") && s.contains("p999="), "{s}");
    }

    fn snapshot_after(rounds: u64) -> (SystemSnapshot, CappedProcess) {
        let mut p = CappedProcess::new(CappedConfig::new(32, 2, 0.75).unwrap());
        let mut rng = SimRng::seed_from(1);
        for _ in 0..rounds {
            iba_sim::AllocationProcess::step(&mut p, &mut rng);
        }
        (SystemSnapshot::capture(&p), p)
    }

    #[test]
    fn empty_system_snapshot() {
        let (snap, _) = snapshot_after(0);
        assert_eq!(snap.round, 0);
        assert_eq!(snap.pool_size, 0);
        assert_eq!(snap.normalized_pool, 0.0);
        assert_eq!(snap.system_load(), 0);
        assert_eq!(snap.oldest_pooled_age, None);
    }

    #[test]
    fn snapshot_is_consistent_with_process() {
        let (snap, p) = snapshot_after(100);
        assert_eq!(snap.round, 100);
        assert_eq!(snap.pool_size, p.pool().len());
        assert_eq!(snap.buffered, p.buffered());
        assert_eq!(snap.load_histogram.count(), 32);
        assert_eq!(snap.age_histogram.count() as usize, snap.pool_size);
        assert!((snap.normalized_pool - snap.pool_size as f64 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn full_bin_fraction_bounds() {
        let (snap, _) = snapshot_after(200);
        // Snapshots are taken after the deletion stage, where every
        // non-empty bin has just served a ball — so no bin can be at full
        // capacity c = 2...
        let f = snap.full_bin_fraction(2);
        assert_eq!(f, 0.0);
        // ...but in a λ = 0.75 stationary system many bins hold c − 1 = 1.
        let f1 = snap.full_bin_fraction(1);
        assert!(f1 > 0.0, "expected some bins at load 1, got fraction {f1}");
        assert!((0.0..=1.0).contains(&f1));
    }
}
