//! Flat slot-arena storage for finite-capacity bins — the data layout of
//! the round kernel.
//!
//! The scalar implementation of CAPPED(c, λ) keeps one heap-allocated
//! `VecDeque<Ball>` per bin, so a round's acceptance stage performs
//! `thrown` random-access pushes, each chasing a deque header *and* its
//! separate backing allocation. [`BinArena`] replaces that with a
//! structure-of-arrays layout:
//!
//! - **`slots`** — one contiguous `Vec<Ball>` of `n · stride` ring slots
//!   (`stride` is a power of two ≥ every configured finite capacity, so for
//!   the paper process this is exactly the `n · c` layout of the issue);
//! - **`meta`** — one packed `u64` per bin holding `(head, len)` in the low
//!   and high 32 bits, so the deletion stage touches 8 sequential bytes per
//!   bin instead of a deque header in a random heap location;
//! - **`caps`** — the per-bin **live** capacity (fault injection may
//!   diverge it from the configured profile).
//!
//! On top of the layout, [`counting_accept`] implements the round kernel's
//! acceptance stage as a counting sort over bin indices: histogram the
//! per-bin request counts ν, clamp each against the bin's remaining room to
//! get the per-bin acceptance quota `min{c − ℓ, ν}`, then stably scatter
//! the age-ordered request stream — the first `quota[b]` requests of bin
//! `b` go to consecutive ring slots (the running per-bin cursor plays the
//! prefix-sum role of a classical counting sort), everything else is
//! rejected *in stream order*. Because the stream is age-ordered and
//! acceptance at a bin depends only on that bin's own request order, this
//! is bit-exactly Algorithm 1's "accept the oldest `min{c − ℓ, ν}`" rule,
//! and the rejects re-emerge in exact pool age order with zero sorting.
//!
//! Capacity *raises* (including to [`Capacity::Infinite`]) are honored by
//! growing the stride on demand: the arena re-lays itself out with a doubled
//! (power-of-two) stride, an `O(n · stride)` copy that only ever happens on
//! a fault raising a bin past the current stride — never in the steady
//! state of the paper process.

use crate::ball::Ball;
use crate::buffer::BinBuffer;
use crate::config::Capacity;
use crate::obs;

/// Strides are initially clamped to this many slots; bins whose capacity
/// exceeds the clamp grow the arena lazily on first overflow, exactly like
/// [`BinBuffer::new`]'s reserve clamp.
const STRIDE_CLAMP: usize = 4096;

/// All of a process's finite-capacity FIFO bin buffers in one contiguous
/// slot arena (see the module docs for the layout).
///
/// # Examples
///
/// ```
/// use iba_core::arena::BinArena;
/// use iba_core::{Ball, Capacity};
///
/// let mut arena = BinArena::new(vec![Capacity::finite(2).unwrap(); 4]);
/// assert!(arena.try_accept(1, Ball::generated_in(1)));
/// assert!(arena.try_accept(1, Ball::generated_in(2)));
/// assert!(!arena.try_accept(1, Ball::generated_in(3))); // full
/// assert_eq!(arena.serve(1), Some(Ball::generated_in(1))); // FIFO
/// assert_eq!(arena.len(1), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BinArena {
    /// `bins() * stride` ring slots; bin `b` owns `b*stride..(b+1)*stride`.
    slots: Vec<Ball>,
    /// Packed per-bin ring state: head index in the low 32 bits, length in
    /// the high 32 bits.
    meta: Vec<u64>,
    /// Live per-bin capacities.
    caps: Vec<Capacity>,
    /// Ring size per bin; always a power of two.
    stride: usize,
    /// `Some(c)` while every live capacity is the same finite `c` — lets
    /// the acceptance fast path skip streaming `caps` entirely. Cleared by
    /// any diverging [`set_capacity`](Self::set_capacity).
    uniform_cap: Option<u32>,
}

#[inline]
pub(crate) fn unpack(meta: u64) -> (usize, usize) {
    ((meta & 0xFFFF_FFFF) as usize, (meta >> 32) as usize)
}

#[inline]
pub(crate) fn pack(head: usize, len: usize) -> u64 {
    (head as u64) | ((len as u64) << 32)
}

/// A mutable window over a contiguous range of arena bins — `slots` and
/// `meta` restricted to the bins of one worker partition, plus the shared
/// `stride`. Produced by [`BinArena::as_slice_mut`] (the whole arena) or
/// [`BinArena::split_slices_mut`] (disjoint per-worker partitions); the
/// split is plain `split_at_mut` slicing, so the intra-round parallel
/// kernel shares the arena across `std::thread::scope` workers without a
/// line of `unsafe`.
#[derive(Debug)]
pub(crate) struct ArenaSliceMut<'a> {
    /// `bins * stride` ring slots of this window's bins.
    pub slots: &'a mut [Ball],
    /// One packed `(head, len)` word per bin of the window.
    pub meta: &'a mut [u64],
    /// Ring size per bin (shared by the whole arena; power of two).
    pub stride: usize,
}

/// The initial stride for a set of capacities and pre-existing loads:
/// a power of two covering every load and every finite capacity up to the
/// [`STRIDE_CLAMP`].
fn initial_stride(caps: &[Capacity], max_len: usize) -> usize {
    let max_cap = caps
        .iter()
        .filter_map(|c| match c {
            Capacity::Finite(c) => Some(c.get() as usize),
            Capacity::Infinite => None,
        })
        .max()
        .unwrap_or(1);
    max_cap
        .min(STRIDE_CLAMP)
        .max(max_len)
        .max(1)
        .next_power_of_two()
}

impl BinArena {
    /// Creates an arena of empty bins with the given live capacities.
    ///
    /// # Panics
    ///
    /// Panics if `caps` is empty or any stride bound exceeds `u32::MAX`.
    pub fn new(caps: Vec<Capacity>) -> Self {
        Self::from_bins(caps, Vec::new())
    }

    /// Rebuilds an arena from checkpointed per-bin contents (in FIFO
    /// order). `contents` may be shorter than `caps` (missing bins start
    /// empty) and, like [`BinBuffer::restore`], bins may legally hold more
    /// balls than their live capacity allows (capacity degradation).
    ///
    /// # Panics
    ///
    /// Panics if `caps` is empty or `contents` is longer than `caps`.
    pub fn from_bins(caps: Vec<Capacity>, contents: Vec<Vec<Ball>>) -> Self {
        assert!(!caps.is_empty(), "an arena needs at least one bin");
        assert!(contents.len() <= caps.len(), "more bin contents than bins");
        let max_len = contents.iter().map(Vec::len).max().unwrap_or(0);
        let stride = initial_stride(&caps, max_len);
        assert!(stride <= u32::MAX as usize, "stride exceeds u32 range");
        let bins = caps.len();
        let mut slots = vec![Ball::generated_in(0); bins * stride];
        let mut meta = vec![0u64; bins];
        for (b, balls) in contents.iter().enumerate() {
            slots[b * stride..b * stride + balls.len()].copy_from_slice(balls);
            meta[b] = pack(0, balls.len());
        }
        let uniform_cap = match caps[0] {
            Capacity::Finite(c0) if caps.iter().all(|&c| c == Capacity::Finite(c0)) => {
                Some(c0.get())
            }
            _ => None,
        };
        BinArena {
            slots,
            meta,
            caps,
            stride,
            uniform_cap,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.meta.len()
    }

    /// The current ring size per bin (exposed for tests and diagnostics).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Current load of bin `b`.
    #[inline]
    pub fn len(&self, b: usize) -> usize {
        unpack(self.meta[b]).1
    }

    /// Live capacity of bin `b`.
    #[inline]
    pub fn capacity(&self, b: usize) -> Capacity {
        self.caps[b]
    }

    /// Changes bin `b`'s live capacity (fault injection). Balls stored
    /// above a lowered capacity stay until served, exactly like
    /// [`BinBuffer::set_capacity`].
    pub fn set_capacity(&mut self, b: usize, capacity: Capacity) {
        self.caps[b] = capacity;
        match (self.uniform_cap, capacity) {
            (Some(u), Capacity::Finite(c)) if c.get() == u => {}
            _ => self.uniform_cap = None,
        }
    }

    /// Remaining room of bin `b`: how many more balls it may accept.
    /// `usize::MAX` for unbounded bins — callers clamp against a request
    /// count before using it arithmetically.
    #[inline]
    pub fn room(&self, b: usize) -> usize {
        let len = self.len(b);
        match self.caps[b] {
            Capacity::Finite(c) => (c.get() as usize).saturating_sub(len),
            Capacity::Infinite => usize::MAX,
        }
    }

    /// Accepts `ball` into bin `b` if there is room, growing the stride if
    /// a raised capacity lets the bin outgrow its ring.
    pub fn try_accept(&mut self, b: usize, ball: Ball) -> bool {
        let (head, len) = unpack(self.meta[b]);
        if !self.caps[b].has_room(len) {
            return false;
        }
        if len == self.stride {
            self.grow(len + 1);
            return self.try_accept(b, ball);
        }
        let idx = b * self.stride + ((head + len) & (self.stride - 1));
        self.slots[idx] = ball;
        self.meta[b] = pack(head, len + 1);
        true
    }

    /// Serves (deletes) bin `b`'s first-accepted ball, if any — Algorithm
    /// 1's FIFO deletion.
    #[inline]
    pub fn serve(&mut self, b: usize) -> Option<Ball> {
        let (head, len) = unpack(self.meta[b]);
        if len == 0 {
            return None;
        }
        let ball = self.slots[b * self.stride + head];
        self.meta[b] = pack((head + 1) & (self.stride - 1), len - 1);
        Some(ball)
    }

    /// The ball bin `b` would serve next, if any.
    pub fn head(&self, b: usize) -> Option<&Ball> {
        let (head, len) = unpack(self.meta[b]);
        if len == 0 {
            return None;
        }
        Some(&self.slots[b * self.stride + head])
    }

    /// Bin `b`'s balls as two slices in FIFO order (front first), like
    /// [`VecDeque::as_slices`](std::collections::VecDeque::as_slices).
    pub fn as_slices(&self, b: usize) -> (&[Ball], &[Ball]) {
        let (head, len) = unpack(self.meta[b]);
        let base = b * self.stride;
        let first = (self.stride - head).min(len);
        (
            &self.slots[base + head..base + head + first],
            &self.slots[base..base + (len - first)],
        )
    }

    /// Iterates bin `b`'s balls in FIFO order.
    pub fn iter_bin(&self, b: usize) -> impl Iterator<Item = &Ball> {
        let (front, back) = self.as_slices(b);
        front.iter().chain(back.iter())
    }

    /// Total balls stored across all bins.
    pub fn buffered(&self) -> usize {
        self.meta.iter().map(|&m| unpack(m).1).sum()
    }

    /// Writes `ball` into bin `b`'s ring at `offset` slots past its current
    /// tail **without** updating the length — the scatter half of the
    /// counting-sort acceptance pass. Call [`add_len`](Self::add_len) once
    /// per bin afterwards to commit. The caller must have sized the stride
    /// (via [`ensure_stride`](Self::ensure_stride)) so `len + offset`
    /// fits.
    #[inline]
    pub fn place(&mut self, b: usize, offset: usize, ball: Ball) {
        let (head, len) = unpack(self.meta[b]);
        debug_assert!(len + offset < self.stride, "scatter past ring bounds");
        let idx = b * self.stride + ((head + len + offset) & (self.stride - 1));
        self.slots[idx] = ball;
    }

    /// Commits `extra` balls previously written via [`place`](Self::place)
    /// to bin `b`'s length.
    #[inline]
    pub fn add_len(&mut self, b: usize, extra: usize) {
        let (head, len) = unpack(self.meta[b]);
        debug_assert!(len + extra <= self.stride, "commit past ring bounds");
        self.meta[b] = pack(head, len + extra);
    }

    /// `Some(c)` while every live capacity is the same finite `c` (the
    /// paper configuration) — the acceptance/commit fast paths key off
    /// this to skip streaming `caps` and the quota scratch entirely.
    #[inline]
    pub(crate) fn uniform_cap(&self) -> Option<u32> {
        self.uniform_cap
    }

    /// Commits `extra` balls previously written via the scatter pass to
    /// bin `b`'s length, then serves (FIFO-deletes) the bin's head ball if
    /// it has one — the fused commit + deletion step of the round kernel,
    /// one meta read-modify-write per bin instead of two.
    #[inline]
    pub fn commit_serve(&mut self, b: usize, extra: usize) -> Option<Ball> {
        let (head, len) = unpack(self.meta[b]);
        let len = len + extra;
        debug_assert!(len <= self.stride, "commit past ring bounds");
        if len == 0 {
            return None;
        }
        let ball = self.slots[b * self.stride + head];
        self.meta[b] = pack((head + 1) & (self.stride - 1), len - 1);
        Some(ball)
    }

    /// The uniform-capacity form of [`commit_serve`](Self::commit_serve):
    /// the number of balls the scatter accepted is recomputed from the
    /// bin's (still pre-accept) length as `(c₀ − ℓ) − remaining`, so the
    /// caller needs no quota scratch at all. Returns the served ball plus
    /// the bin's post-serve `(len, tail)` — exactly what the caller needs
    /// to prime the next round's acceptance register.
    ///
    /// Only valid for online bins of a uniformly-`c₀`-capacitated arena
    /// whose `remaining` came from this round's [`fast_accept`] register.
    #[inline]
    pub(crate) fn commit_serve_uniform(
        &mut self,
        b: usize,
        c0: u32,
        remaining: u32,
    ) -> (Option<Ball>, u32, u32) {
        let mask = self.stride - 1;
        let (head, len_pre) = unpack(self.meta[b]);
        let taken = (c0 as usize).saturating_sub(len_pre) - remaining as usize;
        let len = len_pre + taken;
        debug_assert!(len <= self.stride, "commit past ring bounds");
        if len == 0 {
            return (None, 0, head as u32);
        }
        let ball = self.slots[b * self.stride + head];
        let head = (head + 1) & mask;
        let len = len - 1;
        self.meta[b] = pack(head, len);
        (Some(ball), len as u32, ((head + len) & mask) as u32)
    }

    /// Post-serve `(len, tail)` of bin `b` without serving — the
    /// offline-bin counterpart of
    /// [`commit_serve_uniform`](Self::commit_serve_uniform), used to keep
    /// priming the acceptance registers of bins that are skipped by the
    /// deletion stage.
    #[inline]
    pub(crate) fn len_tail(&self, b: usize) -> (u32, u32) {
        let (head, len) = unpack(self.meta[b]);
        (len as u32, ((head + len) & (self.stride - 1)) as u32)
    }

    /// Ensures every bin's ring can hold `min_fill` balls, re-laying the
    /// arena out with a larger stride if not. No-op in the steady state;
    /// only capacity-raising faults (or restores of degraded checkpoints)
    /// ever trigger the copy.
    pub fn ensure_stride(&mut self, min_fill: usize) {
        if min_fill > self.stride {
            self.grow(min_fill);
        }
    }

    /// Appends a new bin at the end of the arena, pre-loaded with
    /// `contents` (FIFO order, oldest first). Elastic membership: a fresh
    /// bin enters empty with its full capacity as acceptance quota; a bin
    /// transferred from another shard arrives with its buffered balls.
    ///
    /// Like [`from_bins`](Self::from_bins), `contents` may legally exceed
    /// the live capacity (a degraded bin in flight keeps its overflow).
    ///
    /// # Panics
    ///
    /// Panics if the stride needed for `contents` exceeds `u32::MAX`.
    pub fn push_bin_with(&mut self, capacity: Capacity, contents: &[Ball]) {
        self.ensure_stride(contents.len());
        let b = self.bins();
        self.slots
            .resize((b + 1) * self.stride, Ball::generated_in(0));
        self.slots[b * self.stride..b * self.stride + contents.len()].copy_from_slice(contents);
        self.meta.push(pack(0, contents.len()));
        self.caps.push(capacity);
        match (self.uniform_cap, capacity) {
            (Some(c0), Capacity::Finite(c)) if c.get() == c0 => {}
            _ => self.uniform_cap = None,
        }
    }

    /// Removes the arena's **last** bin and returns its live capacity and
    /// buffered balls (FIFO order). Membership shrinks from the top of the
    /// index space so surviving bin indices never shift.
    ///
    /// Removing a bin can only make the capacity set *more* uniform, so
    /// the uniform-capacity fast-path flag is re-derived here (it may
    /// come back after a heterogeneous bin leaves).
    ///
    /// # Panics
    ///
    /// Panics if the arena holds a single bin (an arena is never empty).
    pub fn pop_bin(&mut self) -> (Capacity, Vec<Ball>) {
        assert!(self.bins() > 1, "cannot pop the last bin");
        let b = self.bins() - 1;
        let balls: Vec<Ball> = self.iter_bin(b).copied().collect();
        self.meta.pop();
        let cap = self.caps.pop().expect("non-empty arena");
        self.slots.truncate(self.bins() * self.stride);
        self.uniform_cap = match self.caps[0] {
            Capacity::Finite(c0) if self.caps.iter().all(|&c| c == Capacity::Finite(c0)) => {
                Some(c0.get())
            }
            _ => None,
        };
        (cap, balls)
    }

    /// Re-lays the arena out with a stride of at least `needed` (at least
    /// doubled, kept a power of two), unwrapping every ring to `head = 0`.
    fn grow(&mut self, needed: usize) {
        if let Some(p) = obs::probes() {
            p.arena_grows.inc();
        }
        let new_stride = needed.max(self.stride * 2).next_power_of_two();
        assert!(new_stride <= u32::MAX as usize, "stride exceeds u32 range");
        let bins = self.bins();
        let mut slots = vec![Ball::generated_in(0); bins * new_stride];
        for b in 0..bins {
            let (head, len) = unpack(self.meta[b]);
            let old_base = b * self.stride;
            let first = (self.stride - head).min(len);
            let new_base = b * new_stride;
            slots[new_base..new_base + first]
                .copy_from_slice(&self.slots[old_base + head..old_base + head + first]);
            slots[new_base + first..new_base + len]
                .copy_from_slice(&self.slots[old_base..old_base + (len - first)]);
            self.meta[b] = pack(0, len);
        }
        self.slots = slots;
        self.stride = new_stride;
    }

    /// The whole arena as one mutable [`ArenaSliceMut`] window.
    #[inline]
    pub(crate) fn as_slice_mut(&mut self) -> ArenaSliceMut<'_> {
        ArenaSliceMut {
            slots: &mut self.slots,
            meta: &mut self.meta,
            stride: self.stride,
        }
    }

    /// Splits the arena into disjoint mutable windows at the given bin
    /// boundaries (`bounds` strictly increasing, `bounds.last() ==
    /// bins()`; the first window starts at bin 0). Each window owns the
    /// `slots` and `meta` of its bin range exclusively — the safe-Rust
    /// partitioning that lets intra-round workers scatter in parallel.
    ///
    /// Boundaries are chosen by the caller; rounding them to
    /// [`crate::simd::PARTITION_ALIGN`]-bin multiples keeps every
    /// window's `meta` span starting on its own cache line (8 words per
    /// 64-byte line), so workers never false-share a meta line.
    pub(crate) fn split_slices_mut(&mut self, bounds: &[usize]) -> Vec<ArenaSliceMut<'_>> {
        debug_assert_eq!(bounds.last().copied(), Some(self.bins()));
        let stride = self.stride;
        let mut out = Vec::with_capacity(bounds.len());
        let mut slots: &mut [Ball] = &mut self.slots;
        let mut meta: &mut [u64] = &mut self.meta;
        let mut prev = 0usize;
        for &end in bounds {
            debug_assert!(end >= prev);
            let take = end - prev;
            let (s, rest_s) = slots.split_at_mut(take * stride);
            let (m, rest_m) = meta.split_at_mut(take);
            slots = rest_s;
            meta = rest_m;
            out.push(ArenaSliceMut {
                slots: s,
                meta: m,
                stride,
            });
            prev = end;
        }
        out
    }
}

/// A read-only view of one bin's buffer, independent of whether the bin
/// lives in a [`BinArena`] or a standalone [`BinBuffer`]. This is what
/// [`CappedProcess::bin`](crate::process::CappedProcess::bin) and
/// [`BinShard::bin`](crate::shard::BinShard::bin) hand out.
#[derive(Debug, Clone, Copy)]
pub struct BinView<'a> {
    front: &'a [Ball],
    back: &'a [Ball],
    capacity: Capacity,
}

impl<'a> BinView<'a> {
    /// The bin's current load.
    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    /// Whether the bin is empty.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.back.is_empty()
    }

    /// The bin's live capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The ball the bin would serve next, if any.
    pub fn head(&self) -> Option<&'a Ball> {
        self.front.first().or_else(|| self.back.first())
    }

    /// Iterates the bin's balls in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Ball> {
        self.front.iter().chain(self.back.iter())
    }
}

impl<'a> From<&'a BinBuffer> for BinView<'a> {
    fn from(buffer: &'a BinBuffer) -> Self {
        let (front, back) = buffer.as_slices();
        BinView {
            front,
            back,
            capacity: buffer.capacity(),
        }
    }
}

/// How a process stores its bins: the flat arena for finite-capacity
/// configurations, or one `VecDeque`-backed [`BinBuffer`] per bin for
/// unbounded configurations (and for the scalar reference kernel).
#[derive(Debug, Clone)]
pub(crate) enum BinStore {
    /// Flat-arena storage (the round-kernel layout).
    Arena(BinArena),
    /// Legacy per-bin buffers.
    Buffers(Vec<BinBuffer>),
}

impl BinStore {
    /// Builds storage for the given live capacities: the arena unless any
    /// bin is unbounded or the caller forces the legacy layout.
    pub(crate) fn from_capacities(caps: Vec<Capacity>, force_buffers: bool) -> Self {
        if force_buffers || caps.contains(&Capacity::Infinite) {
            BinStore::Buffers(caps.into_iter().map(BinBuffer::new).collect())
        } else {
            BinStore::Arena(BinArena::new(caps))
        }
    }

    pub(crate) fn len(&self, b: usize) -> usize {
        match self {
            BinStore::Arena(a) => a.len(b),
            BinStore::Buffers(bins) => bins[b].len(),
        }
    }

    pub(crate) fn set_capacity(&mut self, b: usize, capacity: Capacity) {
        match self {
            BinStore::Arena(a) => a.set_capacity(b, capacity),
            BinStore::Buffers(bins) => bins[b].set_capacity(capacity),
        }
    }

    pub(crate) fn try_accept(&mut self, b: usize, ball: Ball) -> bool {
        match self {
            BinStore::Arena(a) => a.try_accept(b, ball),
            BinStore::Buffers(bins) => bins[b].try_accept(ball),
        }
    }

    pub(crate) fn view(&self, b: usize) -> BinView<'_> {
        match self {
            BinStore::Arena(a) => {
                let (front, back) = a.as_slices(b);
                BinView {
                    front,
                    back,
                    capacity: a.capacity(b),
                }
            }
            BinStore::Buffers(bins) => BinView::from(&bins[b]),
        }
    }

    pub(crate) fn buffered(&self) -> usize {
        match self {
            BinStore::Arena(a) => a.buffered(),
            BinStore::Buffers(bins) => bins.iter().map(BinBuffer::len).sum(),
        }
    }

    /// Appends a bin holding `contents` (elastic membership growth or a
    /// bin transferred in from another shard).
    pub(crate) fn push_bin_with(&mut self, capacity: Capacity, contents: &[Ball]) {
        match self {
            BinStore::Arena(a) => a.push_bin_with(capacity, contents),
            BinStore::Buffers(bins) => {
                bins.push(BinBuffer::restore(capacity, contents.iter().copied()));
            }
        }
    }

    /// Removes the last bin, returning its live capacity and balls
    /// (elastic membership shrink). Panics on the last remaining bin.
    pub(crate) fn pop_bin(&mut self) -> (Capacity, Vec<Ball>) {
        match self {
            BinStore::Arena(a) => a.pop_bin(),
            BinStore::Buffers(bins) => {
                assert!(bins.len() > 1, "cannot pop the last bin");
                let bin = bins.pop().expect("non-empty store");
                let capacity = bin.capacity();
                (capacity, bin.iter().copied().collect())
            }
        }
    }
}

/// The single-pass fast path of the counting-sort acceptance stage.
///
/// The classical formulation ([`counting_accept`]) histograms the request
/// stream first so it can bound every bin's post-accept fill before any
/// slot is written. That histogram is only ever *needed* when a bin could
/// outgrow its ring — a fault raising a capacity past the stride. In the
/// steady state every bin's quota is already capped by `capacity − len ≤
/// stride − len`, so the histogram pass (a full extra random-access sweep
/// over the stream) computes information the capacities alone imply.
///
/// This routine therefore fuses histogram and prefix sum into one packed
/// per-bin `u32` register, `state[b] = (remaining quota) << 16 | (next
/// ring offset)`, initialized by a sequential sweep over the bin metadata
/// (the `u16` fields are valid because the fast path only runs while
/// `stride ≤ 2¹⁵`, and a quota never exceeds the free ring space):
///
/// - `remaining quota` starts at the bin's room `c − ℓ` (0 for offline
///   bins; `#requests` for a fault-raised unbounded bin that still fits) —
///   the acceptance bound with ν replaced by its upper bound;
/// - `next ring offset` starts at the bin's tail, `(head + len) & mask`.
///
/// The scatter is then a **single pass** in age order: one register
/// read-modify-write per request (accept: write the tail slot, decrement
/// the quota, advance the cursor; reject: append to `rejected` in stream
/// order). Accepting the first `min{c − ℓ, ν}` requests of each bin this
/// way is bit-exactly the greedy oldest-first rule — the register is the
/// running per-bin prefix sum of a counting sort, computed online instead
/// of ahead of time.
///
/// **The scatter does not update ring lengths.** On `Some`, the caller
/// must fold the per-bin accepted counts into the arena before it is
/// next read. For a uniformly-capacitated arena the count is recomputed
/// from the (still pre-accept) bin metadata — use [`commit_accepts_uniform`]
/// or [`BinArena::commit_serve_uniform`] per bin, no quota scratch
/// involved; otherwise the count is `quotas[b] − state[b] >> 16` — use
/// [`commit_accepts`] or [`BinArena::commit_serve`] per bin.
///
/// Returns `None` **without consuming the stream** if some bin's quota
/// could overflow its ring (`ℓ + quota > stride`, possible only after a
/// fault raised a live capacity past the stride) or the stride outgrew
/// the `u16` register fields — in which case the caller must rerun
/// through [`counting_accept`], whose exact histogram sizes the growth.
/// `state` and `quotas` are round-persistent scratch (resized to the bin
/// count, contents ignored on entry); `quotas` is only written for
/// non-uniform capacity profiles.
///
/// `primed` asserts that `state` already holds every bin's register —
/// the caller's previous commit sweep wrote them (see
/// [`commit_serve_uniform`](BinArena::commit_serve_uniform)) and nothing
/// has touched the arena, the offline mask, or the capacities since. The
/// whole init sweep is skipped; steady-state rounds thus make exactly
/// one pass over the bins (the fused commit + serve + re-prime sweep)
/// besides the scatter itself.
///
/// The caller must guarantee `max_requests` bounds the stream length.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fast_accept<I>(
    arena: &mut BinArena,
    offline: &[bool],
    state: &mut Vec<u32>,
    quotas: &mut Vec<u32>,
    max_requests: usize,
    requests: I,
    rejected: &mut Vec<Ball>,
    primed: bool,
) -> Option<u64>
where
    I: Iterator<Item = (usize, Ball)>,
{
    let n = offline.len();
    debug_assert_eq!(n, arena.bins());
    let stride = arena.stride;
    if stride > 1 << 15 {
        return bail(); // register fields are u16; only fault growth gets here
    }
    let mask = stride - 1;

    // Init sweep: pure sequential reads of meta (+ caps only for
    // non-uniform capacity profiles) and offline. Entries are written
    // unconditionally, so the resize never needs to zero re-used length.
    // A primed caller did all of this during its previous commit sweep.
    if primed {
        debug_assert_eq!(state.len(), n);
        debug_assert!(arena.uniform_cap.is_some(), "only uniform arenas prime");
    } else {
        if state.len() != n {
            state.resize(n, 0);
        }
        let uniform = arena.uniform_cap;
        if uniform.is_none() && quotas.len() != n {
            quotas.resize(n, 0);
        }
        for b in 0..n {
            let (head, len) = unpack(arena.meta[b]);
            let avail = stride - len;
            let room = if offline[b] {
                0
            } else if let Some(c0) = uniform {
                let r = (c0 as usize).saturating_sub(len);
                if r > avail {
                    return bail(); // capacity above the clamped stride
                }
                r
            } else {
                match arena.caps[b] {
                    Capacity::Finite(c) => {
                        let r = (c.get() as usize).saturating_sub(len);
                        if r > avail {
                            return bail();
                        }
                        r
                    }
                    Capacity::Infinite => {
                        if max_requests > avail {
                            return bail(); // unbounded bin could outgrow the ring
                        }
                        max_requests
                    }
                }
            };
            // The stride bail above implies `room ≤ avail ≤ stride ≤ 2¹⁵`,
            // but the quota field is a u16: guard explicitly so a
            // fault-raised capacity can never corrupt the packed cursor
            // bits if the stride invariant ever loosens.
            if room > u16::MAX as usize {
                return bail();
            }
            state[b] = ((room as u32) << 16) | (((head + len) & mask) as u32);
            if uniform.is_none() {
                quotas[b] = room as u32;
            }
        }
    }

    // Scatter: the only random-access pass. One register RMW per request;
    // the per-request accesses are mutually independent, so the
    // out-of-order core overlaps their cache misses on its own — an
    // explicit software-prefetch stage was measured slower here.
    let mut accepted = 0u64;
    for (b, ball) in requests {
        let s = state[b];
        if s >= 1 << 16 {
            let cur = (s & 0xFFFF) as usize;
            arena.slots[b * stride + cur] = ball;
            state[b] = ((s >> 16) - 1) << 16 | (((cur + 1) & mask) as u32);
            accepted += 1;
        } else {
            rejected.push(ball);
        }
    }
    if let Some(p) = obs::probes() {
        p.fast_accept_rounds.inc();
    }
    Some(accepted)
}

/// The shared fast-path bail-out: counts the event (telemetry only) and
/// yields the `None` that sends the caller to [`counting_accept`].
#[cold]
pub(crate) fn bail() -> Option<u64> {
    if let Some(p) = obs::probes() {
        p.fast_accept_bailouts.inc();
    }
    None
}

/// Folds the per-bin accepted counts of a successful [`fast_accept`] into
/// the arena's ring lengths — the plain commit sweep, used where the
/// deletion stage does not immediately follow (the shard's two-phase
/// round). [`CappedProcess`](crate::process::CappedProcess) fuses this
/// into its deletion sweep via [`BinArena::commit_serve`] instead. Only
/// for non-uniform capacity profiles (the only case [`fast_accept`]
/// fills `quotas` for); see [`commit_accepts_uniform`].
pub(crate) fn commit_accepts(arena: &mut BinArena, state: &[u32], quotas: &[u32]) {
    for (b, (&q, &s)) in quotas.iter().zip(state).enumerate() {
        let taken = q - (s >> 16);
        if taken > 0 {
            arena.add_len(b, taken as usize);
        }
    }
}

/// The uniform-capacity form of [`commit_accepts`]: each bin's accepted
/// count is recomputed from its (still pre-accept) length as
/// `(c₀ − ℓ) − remaining`, so no quota scratch is read or written.
pub(crate) fn commit_accepts_uniform(
    arena: &mut BinArena,
    offline: &[bool],
    state: &[u32],
    c0: u32,
) {
    for (b, (&s, &off)) in state.iter().zip(offline).enumerate() {
        if off {
            debug_assert_eq!(s >> 16, 0, "offline bins accept nothing");
            continue;
        }
        let taken = (c0 as usize).saturating_sub(arena.len(b)) - (s >> 16) as usize;
        if taken > 0 {
            arena.add_len(b, taken);
        }
    }
}

/// The exact-histogram form of the counting-sort acceptance pass (see the
/// module docs for the argument that this is bit-exactly the scalar
/// greedy rule). [`fast_accept`] is the steady-state fast path; this form
/// is the general one — its per-bin request histogram ν bounds every
/// post-accept fill exactly, so it can grow the arena for bins whose
/// capacity was fault-raised past the current stride.
///
/// `requests` yields `(bin, ball)` pairs in **age order** and is iterated
/// twice (histogram, then scatter), hence `Clone`. Rejected balls are
/// appended to `rejected` in stream order. `counts` and `quotas` are
/// round-persistent scratch vectors (resized to the bin count, contents
/// ignored on entry). Returns the number of accepted balls.
///
/// The caller must guarantee the stream holds at most `u32::MAX` requests
/// (the histogram counts in `u32`).
pub(crate) fn counting_accept<I>(
    arena: &mut BinArena,
    offline: &[bool],
    counts: &mut Vec<u32>,
    quotas: &mut Vec<u32>,
    requests: I,
    rejected: &mut Vec<Ball>,
) -> u64
where
    I: Iterator<Item = (usize, Ball)> + Clone,
{
    let n = offline.len();
    debug_assert_eq!(n, arena.bins());
    if let Some(p) = obs::probes() {
        p.fallback_rounds.inc();
    }

    // Pass 1: per-bin request histogram ν.
    counts.clear();
    counts.resize(n, 0);
    for (b, _) in requests.clone() {
        counts[b] += 1;
    }

    // Per-bin acceptance quotas min{c − ℓ, ν} (0 for offline bins), the
    // total accepted count, and the largest post-accept fill — the one
    // place a capacity-raising fault can force a stride growth, detected
    // *before* any slot is written. `counts` is zeroed as it is read so it
    // can serve as the scatter cursor below.
    quotas.clear();
    quotas.resize(n, 0);
    let mut accepted = 0u64;
    let mut max_fill = 0usize;
    for b in 0..n {
        let requested = counts[b];
        counts[b] = 0;
        if requested == 0 || offline[b] {
            continue;
        }
        let quota = arena.room(b).min(requested as usize) as u32;
        if quota == 0 {
            continue;
        }
        quotas[b] = quota;
        accepted += u64::from(quota);
        max_fill = max_fill.max(arena.len(b) + quota as usize);
    }
    arena.ensure_stride(max_fill);

    // Pass 2: stable scatter. The first quota[b] requests of bin b land in
    // consecutive ring slots; everything else is rejected in stream order,
    // i.e. exact age order.
    for (b, ball) in requests {
        let taken = counts[b];
        if taken < quotas[b] {
            counts[b] = taken + 1;
            arena.place(b, taken as usize, ball);
        } else {
            rejected.push(ball);
        }
    }
    for (b, &quota) in quotas.iter().enumerate() {
        if quota > 0 {
            arena.add_len(b, quota as usize);
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite(c: u32) -> Capacity {
        Capacity::finite(c).unwrap()
    }

    #[test]
    fn arena_matches_binbuffer_semantics() {
        let mut arena = BinArena::new(vec![finite(2); 3]);
        let mut buffer = BinBuffer::new(finite(2));
        for label in [5, 1, 3, 9] {
            assert_eq!(
                arena.try_accept(1, Ball::generated_in(label)),
                buffer.try_accept(Ball::generated_in(label))
            );
        }
        assert_eq!(arena.len(1), buffer.len());
        assert_eq!(arena.head(1), buffer.head());
        assert_eq!(arena.serve(1), buffer.serve());
        assert_eq!(arena.serve(1), buffer.serve());
        assert_eq!(arena.serve(1), buffer.serve());
        assert_eq!(arena.len(0), 0, "other bins untouched");
    }

    #[test]
    fn ring_wraps_within_stride() {
        let mut arena = BinArena::new(vec![finite(2); 2]);
        assert_eq!(arena.stride(), 2);
        for round in 1..=50u64 {
            assert!(arena.try_accept(0, Ball::generated_in(round)));
            assert!(arena.try_accept(0, Ball::generated_in(round)));
            assert_eq!(arena.serve(0), Some(Ball::generated_in(round)));
            assert_eq!(arena.serve(0), Some(Ball::generated_in(round)));
        }
        assert_eq!(arena.stride(), 2, "steady state never grows");
    }

    #[test]
    fn raised_capacity_grows_stride_on_demand() {
        let mut arena = BinArena::new(vec![finite(2); 4]);
        arena.try_accept(3, Ball::generated_in(1));
        arena.serve(3); // move the head so growth must unwrap a ring
        arena.try_accept(3, Ball::generated_in(2));
        arena.try_accept(3, Ball::generated_in(3));
        arena.set_capacity(3, Capacity::Infinite);
        for label in 4..20 {
            assert!(arena.try_accept(3, Ball::generated_in(label)));
        }
        assert!(arena.stride() >= 18);
        let labels: Vec<u64> = arena.iter_bin(3).map(Ball::label).collect();
        let expected: Vec<u64> = (2..20).collect();
        assert_eq!(labels, expected, "FIFO order survives the re-layout");
        assert_eq!(arena.len(0), 0);
    }

    #[test]
    fn degraded_capacity_keeps_overflow_and_rejects() {
        let caps = vec![finite(3)];
        let contents = vec![(0..5).map(Ball::generated_in).collect()];
        let mut arena = BinArena::from_bins(caps, contents);
        arena.set_capacity(0, finite(1));
        assert_eq!(arena.len(0), 5);
        assert_eq!(arena.room(0), 0);
        assert!(!arena.try_accept(0, Ball::generated_in(9)));
        assert_eq!(arena.serve(0), Some(Ball::generated_in(0)));
    }

    #[test]
    fn counting_accept_matches_scalar_greedy() {
        // Bin 0 full, bin 1 has room for one, bin 2 offline, bin 3 open.
        let caps = vec![finite(1), finite(2), finite(4), finite(4)];
        let contents = vec![
            vec![Ball::generated_in(1)],
            vec![Ball::generated_in(1)],
            Vec::new(),
        ];
        let mut arena = BinArena::from_bins(caps.clone(), contents.clone());
        let offline = [false, false, true, false];
        let stream: Vec<(usize, Ball)> = vec![
            (0, Ball::generated_in(2)), // bin 0 full -> reject
            (1, Ball::generated_in(2)), // fills bin 1
            (1, Ball::generated_in(3)), // over quota -> reject
            (2, Ball::generated_in(3)), // offline -> reject
            (3, Ball::generated_in(3)),
            (3, Ball::generated_in(4)),
        ];
        let mut counts = Vec::new();
        let mut quotas = Vec::new();
        let mut rejected = Vec::new();
        let accepted = counting_accept(
            &mut arena,
            &offline,
            &mut counts,
            &mut quotas,
            stream.iter().copied(),
            &mut rejected,
        );

        // Scalar reference: greedy try_accept over the same stream.
        let mut reference = BinArena::from_bins(caps, contents);
        let mut ref_rejected = Vec::new();
        let mut ref_accepted = 0u64;
        for &(b, ball) in &stream {
            if !offline[b] && reference.try_accept(b, ball) {
                ref_accepted += 1;
            } else {
                ref_rejected.push(ball);
            }
        }

        assert_eq!(accepted, ref_accepted);
        assert_eq!(rejected, ref_rejected);
        for b in 0..4 {
            let kernel: Vec<u64> = arena.iter_bin(b).map(Ball::label).collect();
            let scalar: Vec<u64> = reference.iter_bin(b).map(Ball::label).collect();
            assert_eq!(kernel, scalar, "bin {b}");
        }
    }

    #[test]
    fn fast_accept_matches_counting_accept() {
        // Same fixture as `counting_accept_matches_scalar_greedy`: full,
        // partially full, offline, and open bins.
        let caps = vec![finite(1), finite(2), finite(4), finite(4)];
        let contents = vec![
            vec![Ball::generated_in(1)],
            vec![Ball::generated_in(1)],
            Vec::new(),
        ];
        let offline = [false, false, true, false];
        let stream: Vec<(usize, Ball)> = vec![
            (0, Ball::generated_in(2)),
            (1, Ball::generated_in(2)),
            (1, Ball::generated_in(3)),
            (2, Ball::generated_in(3)),
            (3, Ball::generated_in(3)),
            (3, Ball::generated_in(4)),
        ];

        let mut fast_arena = BinArena::from_bins(caps.clone(), contents.clone());
        let (mut state, mut quotas, mut fast_rejected) = (Vec::new(), Vec::new(), Vec::new());
        let fast = fast_accept(
            &mut fast_arena,
            &offline,
            &mut state,
            &mut quotas,
            stream.len(),
            stream.iter().copied(),
            &mut fast_rejected,
            false,
        )
        .expect("no ring overflow possible");
        commit_accepts(&mut fast_arena, &state, &quotas);

        let mut exact_arena = BinArena::from_bins(caps, contents);
        let (mut counts, mut equotas, mut exact_rejected) = (Vec::new(), Vec::new(), Vec::new());
        let exact = counting_accept(
            &mut exact_arena,
            &offline,
            &mut counts,
            &mut equotas,
            stream.iter().copied(),
            &mut exact_rejected,
        );

        assert_eq!(fast, exact);
        assert_eq!(fast_rejected, exact_rejected);
        for b in 0..4 {
            let f: Vec<u64> = fast_arena.iter_bin(b).map(Ball::label).collect();
            let e: Vec<u64> = exact_arena.iter_bin(b).map(Ball::label).collect();
            assert_eq!(f, e, "bin {b}");
        }
    }

    #[test]
    fn fast_accept_wraps_the_ring() {
        // Head away from 0 so accepted balls must wrap around the ring.
        let mut arena = BinArena::new(vec![finite(2); 1]);
        assert_eq!(arena.stride(), 2);
        arena.try_accept(0, Ball::generated_in(1));
        arena.try_accept(0, Ball::generated_in(2));
        arena.serve(0); // head = 1, len = 1
        let stream = [(0usize, Ball::generated_in(3))];
        let (mut state, mut quotas, mut rejected) = (Vec::new(), Vec::new(), Vec::new());
        let accepted = fast_accept(
            &mut arena,
            &[false],
            &mut state,
            &mut quotas,
            stream.len(),
            stream.iter().copied(),
            &mut rejected,
            false,
        )
        .expect("fits");
        commit_accepts_uniform(&mut arena, &[false], &state, 2);
        assert_eq!(accepted, 1);
        assert!(rejected.is_empty());
        let labels: Vec<u64> = arena.iter_bin(0).map(Ball::label).collect();
        assert_eq!(labels, vec![2, 3]);
    }

    #[test]
    fn primed_fast_accept_matches_cold_init() {
        // Run one cold round, commit + re-prime through
        // commit_serve_uniform, then check a primed round produces exactly
        // the same acceptances, rejects, and ring contents as a cold one.
        let caps = vec![finite(2); 4];
        let offline = [false, false, false, false];
        let round1: Vec<(usize, Ball)> = vec![
            (0, Ball::generated_in(1)),
            (0, Ball::generated_in(1)),
            (2, Ball::generated_in(1)),
        ];
        let round2: Vec<(usize, Ball)> = vec![
            (0, Ball::generated_in(2)), // bin 0: 1 held + room 1 -> accept
            (0, Ball::generated_in(2)), // over quota -> reject
            (3, Ball::generated_in(2)),
        ];

        let run = |primed_second_round: bool| {
            let mut arena = BinArena::new(caps.clone());
            let (mut state, mut quotas) = (Vec::new(), Vec::new());
            let mut rejected = Vec::new();
            fast_accept(
                &mut arena,
                &offline,
                &mut state,
                &mut quotas,
                round1.len(),
                round1.iter().copied(),
                &mut rejected,
                false,
            )
            .expect("fits");
            // Fused commit + serve + re-prime, as the process kernel does.
            for (b, s) in state.iter_mut().enumerate() {
                let (_, len, tail) = arena.commit_serve_uniform(b, 2, *s >> 16);
                *s = ((2 - len) << 16) | tail;
            }
            rejected.clear();
            let accepted = fast_accept(
                &mut arena,
                &offline,
                &mut state,
                &mut quotas,
                round2.len(),
                round2.iter().copied(),
                &mut rejected,
                primed_second_round,
            )
            .expect("fits");
            let mut served = Vec::new();
            for (b, &s) in state.iter().enumerate() {
                let (ball, _, _) = arena.commit_serve_uniform(b, 2, s >> 16);
                served.push(ball);
            }
            let bins: Vec<Vec<u64>> = (0..4)
                .map(|b| arena.iter_bin(b).map(Ball::label).collect())
                .collect();
            (accepted, rejected, served, bins)
        };

        assert_eq!(run(true), run(false));
    }

    #[test]
    fn fast_accept_bails_out_on_possible_overflow() {
        // An unbounded (fault-raised) bin could outgrow its ring: the fast
        // path must refuse without consuming the stream or touching state.
        let mut arena = BinArena::new(vec![finite(2); 2]);
        arena.set_capacity(0, Capacity::Infinite);
        let stream: Vec<(usize, Ball)> = (0..40).map(|i| (0usize, Ball::generated_in(i))).collect();
        let (mut state, mut quotas, mut rejected) = (Vec::new(), Vec::new(), Vec::new());
        let out = fast_accept(
            &mut arena,
            &[false, false],
            &mut state,
            &mut quotas,
            stream.len(),
            stream.iter().copied(),
            &mut rejected,
            false,
        );
        assert_eq!(out, None);
        assert!(rejected.is_empty());
        assert_eq!(arena.buffered(), 0);
        assert_eq!(arena.stride(), 2, "fast path must not grow the arena");
    }

    #[test]
    fn fast_accept_bails_out_on_capacity_past_u16() {
        // Regression: a fault raising a live capacity past 65535 must take
        // the counting_accept fallback — a quota that large cannot be
        // packed into the u16 high half of the (quota << 16 | cursor)
        // register without corrupting the cursor bits.
        let mut arena = BinArena::new(vec![finite(2); 2]);
        arena.set_capacity(0, finite(70_000));
        let stream: Vec<(usize, Ball)> = (0..10).map(|i| (0usize, Ball::generated_in(i))).collect();
        let (mut state, mut quotas, mut rejected) = (Vec::new(), Vec::new(), Vec::new());
        let out = fast_accept(
            &mut arena,
            &[false, false],
            &mut state,
            &mut quotas,
            stream.len(),
            stream.iter().copied(),
            &mut rejected,
            false,
        );
        assert_eq!(out, None, "quota > u16::MAX must bail to counting_accept");
        assert!(rejected.is_empty());
        assert_eq!(arena.buffered(), 0, "bail must not consume the stream");

        // The fallback handles the same stream exactly.
        let (mut counts, mut fquotas, mut frejected) = (Vec::new(), Vec::new(), Vec::new());
        let accepted = counting_accept(
            &mut arena,
            &[false, false],
            &mut counts,
            &mut fquotas,
            stream.iter().copied(),
            &mut frejected,
        );
        assert_eq!(accepted, 10);
        assert!(frejected.is_empty());
        let labels: Vec<u64> = arena.iter_bin(0).map(Ball::label).collect();
        assert_eq!(labels, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn counting_accept_grows_for_unbounded_bins() {
        let mut arena = BinArena::new(vec![finite(2); 2]);
        arena.set_capacity(0, Capacity::Infinite);
        let stream: Vec<(usize, Ball)> = (0..40).map(|i| (0usize, Ball::generated_in(i))).collect();
        let (mut counts, mut quotas, mut rejected) = (Vec::new(), Vec::new(), Vec::new());
        let accepted = counting_accept(
            &mut arena,
            &[false, false],
            &mut counts,
            &mut quotas,
            stream.iter().copied(),
            &mut rejected,
        );
        assert_eq!(accepted, 40);
        assert!(rejected.is_empty());
        assert_eq!(arena.len(0), 40);
        let labels: Vec<u64> = arena.iter_bin(0).map(Ball::label).collect();
        let expected: Vec<u64> = (0..40).collect();
        assert_eq!(labels, expected);
    }

    #[test]
    fn from_bins_round_trips_through_slices() {
        let caps = vec![finite(3), finite(3)];
        let contents = vec![
            (10..13).map(Ball::generated_in).collect(),
            vec![Ball::generated_in(7)],
        ];
        let arena = BinArena::from_bins(caps, contents);
        let (front, back) = arena.as_slices(0);
        assert_eq!(front.len() + back.len(), 3);
        let labels: Vec<u64> = arena.iter_bin(0).map(Ball::label).collect();
        assert_eq!(labels, vec![10, 11, 12]);
        assert_eq!(arena.buffered(), 4);
    }

    #[test]
    fn view_is_uniform_across_storages() {
        let mut buffer_store = BinStore::from_capacities(vec![finite(2); 2], true);
        let mut arena_store = BinStore::from_capacities(vec![finite(2); 2], false);
        assert!(matches!(buffer_store, BinStore::Buffers(_)));
        assert!(matches!(arena_store, BinStore::Arena(_)));
        for store in [&mut buffer_store, &mut arena_store] {
            assert!(store.try_accept(1, Ball::generated_in(4)));
            assert!(store.try_accept(1, Ball::generated_in(6)));
        }
        let bv = buffer_store.view(1);
        let av = arena_store.view(1);
        assert_eq!(bv.len(), av.len());
        assert_eq!(bv.head(), av.head());
        assert_eq!(bv.capacity(), av.capacity());
        let b_labels: Vec<u64> = bv.iter().map(Ball::label).collect();
        let a_labels: Vec<u64> = av.iter().map(Ball::label).collect();
        assert_eq!(b_labels, a_labels);
        assert!(!bv.is_empty());
    }

    #[test]
    fn infinite_capacity_forces_buffer_storage() {
        let store = BinStore::from_capacities(vec![Capacity::Infinite; 2], false);
        assert!(matches!(store, BinStore::Buffers(_)));
    }

    #[test]
    fn push_and_pop_bins_preserve_contents_and_uniform_flag() {
        let mut arena = BinArena::new(vec![finite(2); 2]);
        assert!(arena.try_accept(1, Ball::generated_in(3)));
        assert_eq!(arena.uniform_cap(), Some(2));

        // A fresh uniform bin keeps the fast-path flag.
        arena.push_bin_with(finite(2), &[]);
        assert_eq!(arena.bins(), 3);
        assert_eq!(arena.uniform_cap(), Some(2));
        assert_eq!(arena.len(2), 0);

        // A transferred bin arrives with its balls in FIFO order.
        arena.push_bin_with(finite(2), &[Ball::generated_in(1), Ball::generated_in(4)]);
        assert_eq!(arena.len(3), 2);
        assert_eq!(arena.head(3), Some(&Ball::generated_in(1)));

        // A heterogeneous bin drops the flag; popping it restores it.
        arena.push_bin_with(finite(7), &[]);
        assert_eq!(arena.uniform_cap(), None);
        let (cap, balls) = arena.pop_bin();
        assert_eq!(cap, finite(7));
        assert!(balls.is_empty());
        assert_eq!(arena.uniform_cap(), Some(2));

        let (cap, balls) = arena.pop_bin();
        assert_eq!(cap, finite(2));
        assert_eq!(balls, vec![Ball::generated_in(1), Ball::generated_in(4)]);
        assert_eq!(arena.bins(), 3);
        assert_eq!(arena.buffered(), 1, "bin 1's ball survived the churn");
        assert_eq!(arena.head(1), Some(&Ball::generated_in(3)));
    }

    #[test]
    fn push_bin_grows_stride_for_oversized_contents() {
        let mut arena = BinArena::new(vec![finite(2); 2]);
        let stride = arena.stride();
        let big: Vec<Ball> = (1..=(stride as u64 + 1)).map(Ball::generated_in).collect();
        arena.push_bin_with(Capacity::Infinite, &big);
        assert!(arena.stride() > stride);
        let labels: Vec<u64> = arena.iter_bin(2).map(Ball::label).collect();
        let expected: Vec<u64> = (1..=(stride as u64 + 1)).collect();
        assert_eq!(labels, expected);
    }

    #[test]
    #[should_panic(expected = "cannot pop the last bin")]
    fn popping_the_last_bin_panics() {
        let mut arena = BinArena::new(vec![finite(2)]);
        arena.pop_bin();
    }
}
