//! Continuous-time (asynchronous) CAPPED: the retrial-queue analog.
//!
//! The paper's model is round-synchronous: arrivals, allocation and
//! service happen in lockstep. Real request systems are asynchronous. The
//! natural continuous-time analog replaces each synchronous ingredient by
//! its memoryless counterpart:
//!
//! | synchronous (paper) | continuous (this module) |
//! |---|---|
//! | `λn` arrivals per round | Poisson arrival process of rate `λn` |
//! | one deletion per non-empty bin per round | exponential service, rate 1 per busy server |
//! | rejected balls retry next round | rejected balls join a retrial *orbit* and retry after Exp(1) |
//!
//! This is a network of `n` M/M/1/c queues with uniform random routing
//! and a shared retrial orbit — the classic *retrial queue* shape. The
//! `continuous` experiment in `iba-bench` shows the paper's qualitative
//! conclusions (stationary orbit ≈ pool, sweet-spot capacity) survive the
//! removal of the synchrony assumption.

use iba_sim::events::{sample_exponential, EventQueue};
use iba_sim::rng::SimRng;
use iba_sim::stats::{Histogram, Summary};

/// Configuration of the continuous-time system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousConfig {
    /// Number of servers `n`.
    pub servers: usize,
    /// Buffer capacity `c` per server (including the job in service).
    pub capacity: u32,
    /// Normalized arrival rate λ (arrivals come at rate `λ·n`).
    pub lambda: f64,
    /// Service rate per busy server (the paper's analog is 1).
    pub service_rate: f64,
    /// Retry rate per orbiting ball (the paper's analog is 1).
    pub retry_rate: f64,
}

impl ContinuousConfig {
    /// The paper-analog configuration: service rate 1, retry rate 1.
    ///
    /// # Panics
    ///
    /// Panics if `n = 0`, `c = 0`, or `λ` is not in `[0, 1)`.
    pub fn paper_analog(servers: usize, capacity: u32, lambda: f64) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(capacity > 0, "capacity must be positive");
        assert!((0.0..1.0).contains(&lambda), "lambda must be in [0, 1)");
        ContinuousConfig {
            servers,
            capacity,
            lambda,
            service_rate: 1.0,
            retry_rate: 1.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A fresh external arrival.
    Arrival,
    /// An orbiting ball retries (carries its original arrival time).
    Retry { arrived_at: f64 },
    /// The server finishes its current job.
    ServiceCompletion { server: usize },
}

/// Metrics collected over an observation window of the continuous system.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousStats {
    /// Sojourn times (arrival to service completion) of completed jobs.
    pub sojourns: Summary,
    /// Histogram of sojourn times rounded down to integers (for quantiles).
    pub sojourn_histogram: Histogram,
    /// Time-averaged orbit size (the continuous analog of the pool).
    pub mean_orbit: f64,
    /// Time-averaged number of jobs in the whole system.
    pub mean_in_system: f64,
    /// Jobs completed in the window.
    pub completed: u64,
    /// Observation window length (time units).
    pub window: f64,
}

impl ContinuousStats {
    /// Little's-law cross-check: `mean_in_system / throughput` must equal
    /// the mean sojourn time. Returns the relative discrepancy.
    pub fn littles_law_gap(&self) -> f64 {
        if self.completed == 0 || self.window == 0.0 {
            return 0.0;
        }
        let throughput = self.completed as f64 / self.window;
        let predicted = self.mean_in_system / throughput;
        let measured = self.sojourns.mean();
        (predicted - measured).abs() / measured.max(1e-9)
    }
}

/// The continuous-time CAPPED system.
///
/// # Examples
///
/// ```
/// use iba_core::continuous::{ContinuousCapped, ContinuousConfig};
/// use iba_sim::SimRng;
///
/// let config = ContinuousConfig::paper_analog(256, 2, 0.75);
/// let mut system = ContinuousCapped::new(config);
/// let mut rng = SimRng::seed_from(3);
/// system.run_for(200.0, &mut rng);          // warm up
/// let stats = system.observe(500.0, &mut rng);
/// assert!(stats.completed > 0);
/// assert!(stats.littles_law_gap() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct ContinuousCapped {
    config: ContinuousConfig,
    /// Per-server queue of arrival times (head is in service).
    queues: Vec<Vec<f64>>,
    orbit: u64,
    events: EventQueue<Event>,
    time: f64,
    started: bool,
}

impl ContinuousCapped {
    /// Creates the system empty at time 0.
    pub fn new(config: ContinuousConfig) -> Self {
        ContinuousCapped {
            queues: vec![Vec::new(); config.servers],
            orbit: 0,
            events: EventQueue::new(),
            time: 0.0,
            started: false,
            config,
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current orbit size (retrying balls) — the analog of the pool.
    pub fn orbit(&self) -> u64 {
        self.orbit
    }

    /// Total jobs in the system (queued + in service + orbiting).
    pub fn in_system(&self) -> u64 {
        self.orbit + self.queues.iter().map(|q| q.len() as u64).sum::<u64>()
    }

    fn schedule_next_arrival(&mut self, rng: &mut SimRng) {
        let rate = self.config.lambda * self.config.servers as f64;
        if rate > 0.0 {
            let dt = sample_exponential(rng, rate);
            self.events.schedule(self.time + dt, Event::Arrival);
        }
    }

    /// Routes a job (fresh or retrying) to a uniformly random server.
    fn route(&mut self, arrived_at: f64, rng: &mut SimRng) {
        let server = rng.uniform_bin(self.config.servers);
        let q = &mut self.queues[server];
        if q.len() < self.config.capacity as usize {
            q.push(arrived_at);
            if q.len() == 1 {
                // Server was idle: start service.
                let dt = sample_exponential(rng, self.config.service_rate);
                self.events
                    .schedule(self.time + dt, Event::ServiceCompletion { server });
            }
        } else {
            // Buffer full: the ball joins the orbit and retries later.
            self.orbit += 1;
            let dt = sample_exponential(rng, self.config.retry_rate);
            self.events
                .schedule(self.time + dt, Event::Retry { arrived_at });
        }
    }

    /// Advances the simulation until `deadline`, discarding metrics.
    pub fn run_for(&mut self, duration: f64, rng: &mut SimRng) {
        let deadline = self.time + duration;
        self.drive(deadline, rng, &mut |_, _| {});
    }

    /// Advances the simulation for `duration` time units, collecting
    /// statistics.
    pub fn observe(&mut self, duration: f64, rng: &mut SimRng) -> ContinuousStats {
        let start = self.time;
        let deadline = start + duration;
        let mut sojourns = Summary::new();
        let mut sojourn_histogram = Histogram::new();
        // Time-weighted integrals of orbit and in-system counts.
        let mut orbit_integral = 0.0;
        let mut system_integral = 0.0;
        let mut last_time = start;
        let mut completed = 0u64;

        // Snapshot counters before each event to integrate step functions.
        let mut on_event = |sim: &Self, completion: Option<f64>| {
            let dt = sim.time - last_time;
            orbit_integral += sim.orbit as f64 * dt;
            system_integral += sim.in_system() as f64 * dt;
            last_time = sim.time;
            if let Some(sojourn) = completion {
                sojourns.push(sojourn);
                sojourn_histogram.record(sojourn.floor() as u64);
                completed += 1;
            }
        };
        self.drive(deadline, rng, &mut on_event);

        ContinuousStats {
            sojourns,
            sojourn_histogram,
            mean_orbit: orbit_integral / duration.max(1e-12),
            mean_in_system: system_integral / duration.max(1e-12),
            completed,
            window: duration,
        }
    }

    /// Event loop: processes events up to `deadline`. The callback runs
    /// *after* each event with the completion sojourn (if the event was a
    /// completion) — but with the pre-event time delta available via the
    /// closure's captured `last_time`.
    fn drive(
        &mut self,
        deadline: f64,
        rng: &mut SimRng,
        on_event: &mut dyn FnMut(&Self, Option<f64>),
    ) {
        if !self.started {
            self.started = true;
            self.schedule_next_arrival(rng);
        }
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            let (t, event) = self.events.pop().expect("peeked");
            self.time = t;
            let mut completion = None;
            match event {
                Event::Arrival => {
                    self.schedule_next_arrival(rng);
                    self.route(t, rng);
                }
                Event::Retry { arrived_at } => {
                    self.orbit -= 1;
                    self.route(arrived_at, rng);
                }
                Event::ServiceCompletion { server } => {
                    let arrived_at = self.queues[server].remove(0);
                    completion = Some(t - arrived_at);
                    if !self.queues[server].is_empty() {
                        let dt = sample_exponential(rng, self.config.service_rate);
                        self.events
                            .schedule(t + dt, Event::ServiceCompletion { server });
                    }
                }
            }
            on_event(self, completion);
        }
        self.time = deadline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stationary_stats(n: usize, c: u32, lambda: f64, seed: u64) -> ContinuousStats {
        let config = ContinuousConfig::paper_analog(n, c, lambda);
        let mut sys = ContinuousCapped::new(config);
        let mut rng = SimRng::seed_from(seed);
        sys.run_for(500.0, &mut rng);
        sys.observe(1_000.0, &mut rng)
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn config_rejects_lambda_one() {
        ContinuousConfig::paper_analog(4, 1, 1.0);
    }

    #[test]
    fn empty_system_with_zero_rate_stays_empty() {
        let config = ContinuousConfig::paper_analog(4, 1, 0.0);
        let mut sys = ContinuousCapped::new(config);
        let mut rng = SimRng::seed_from(1);
        sys.run_for(100.0, &mut rng);
        assert_eq!(sys.in_system(), 0);
        assert_eq!(sys.orbit(), 0);
        assert_eq!(sys.time(), 100.0);
    }

    #[test]
    fn system_is_stable_and_serves_throughput() {
        let stats = stationary_stats(256, 2, 0.75, 2);
        // Throughput must be ≈ λ·n = 192 per time unit.
        let throughput = stats.completed as f64 / stats.window;
        assert!((throughput - 192.0).abs() < 10.0, "throughput {throughput}");
        assert!(stats.mean_in_system > 0.0);
    }

    #[test]
    fn littles_law_self_consistency() {
        let stats = stationary_stats(256, 2, 0.75, 3);
        let gap = stats.littles_law_gap();
        assert!(gap < 0.05, "Little's law gap {gap}");
    }

    #[test]
    fn orbit_shrinks_with_capacity() {
        let o1 = stationary_stats(256, 1, 0.75, 4).mean_orbit;
        let o3 = stationary_stats(256, 3, 0.75, 4).mean_orbit;
        assert!(
            o3 < o1 / 2.0,
            "orbit c=3 ({o3}) should be well below c=1 ({o1})"
        );
    }

    #[test]
    fn sojourns_grow_with_lambda() {
        let light = stationary_stats(128, 2, 0.25, 5).sojourns.mean();
        let heavy = stationary_stats(128, 2, 0.9375, 5).sojourns.mean();
        assert!(heavy > light, "{heavy} vs {light}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = stationary_stats(64, 2, 0.75, 7);
        let b = stationary_stats(64, 2, 0.75, 7);
        assert_eq!(a, b);
    }
}
