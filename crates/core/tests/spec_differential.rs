//! Differential test: the optimized `CappedProcess` must produce exactly
//! the trajectory of the executable specification (`spec::SpecCapped`)
//! when driven with identical bin choices.
//!
//! The two implementations share no allocation logic: the optimized
//! process accepts greedily in global age order with incremental state;
//! the specification gathers per-bin requests, re-sorts them by age and
//! recomputes everything from scratch. Trajectory equality over randomized
//! runs is therefore strong evidence that both implement Algorithm 1.

use proptest::prelude::*;

use iba_core::spec::SpecCapped;
use iba_core::{CappedConfig, CappedProcess};
use iba_sim::SimRng;

/// Drives both implementations with the same choice stream and asserts
/// identical reports every round. Waiting-time vectors are compared as
/// multisets (the two implementations may serve bins in different orders
/// within a round, which is unobservable in the model).
fn run_differential(n: usize, c: u32, batch: u64, seed: u64, rounds: u64) {
    let lambda = batch as f64 / n as f64;
    let config = CappedConfig::new(n, c, lambda).expect("valid");
    let mut fast = CappedProcess::new(config);
    let mut spec = SpecCapped::new(n, c, batch);
    let mut rng = SimRng::seed_from(seed);

    for round in 1..=rounds {
        let count = fast.next_throw_count();
        assert_eq!(count, spec.pool_size() + batch as usize, "round {round}");
        let choices: Vec<usize> = (0..count).map(|_| rng.uniform_bin(n)).collect();

        let rf = fast.step_with_choices(&choices);
        let rs = spec.step_with_choices(&choices);

        assert_eq!(rf.round, rs.round, "round {round}");
        assert_eq!(rf.generated, rs.generated, "round {round}");
        assert_eq!(rf.thrown, rs.thrown, "round {round}");
        assert_eq!(rf.accepted, rs.accepted, "round {round}");
        assert_eq!(rf.pool_size, rs.pool_size, "round {round}");
        assert_eq!(rf.deleted, rs.deleted, "round {round}");
        assert_eq!(rf.failed_deletions, rs.failed_deletions, "round {round}");
        assert_eq!(rf.buffered, rs.buffered, "round {round}");
        assert_eq!(rf.max_load, rs.max_load, "round {round}");
        let mut wf = rf.waiting_times.clone();
        let mut ws = rs.waiting_times.clone();
        wf.sort_unstable();
        ws.sort_unstable();
        assert_eq!(wf, ws, "round {round}");

        // Per-bin loads must also coincide.
        for bin in 0..n {
            assert_eq!(
                fast.bin(bin).len(),
                spec.load(bin),
                "round {round}, bin {bin}"
            );
        }
    }
}

#[test]
fn differential_small_heavy() {
    run_differential(8, 1, 7, 1, 200);
}

#[test]
fn differential_medium_capacity_two() {
    run_differential(32, 2, 24, 2, 150);
}

#[test]
fn differential_large_capacity_four() {
    run_differential(128, 4, 120, 3, 100);
}

#[test]
fn differential_zero_arrivals() {
    run_differential(16, 2, 0, 4, 20);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn differential_randomized(
        n in 2usize..40,
        c in 1u32..5,
        seed in any::<u64>(),
    ) {
        let batch = (n as u64).saturating_sub(1).min(n as u64 * 3 / 4);
        run_differential(n, c, batch, seed, 40);
    }
}
