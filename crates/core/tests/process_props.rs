//! Property-based tests of the CAPPED process internals: acceptance-rule
//! equivalence and determinism under pre-drawn choices.

use proptest::prelude::*;

use iba_core::{Ball, BinBuffer, Capacity, CappedConfig, CappedProcess, Pool};
use iba_sim::process::AllocationProcess;
use iba_sim::SimRng;

/// Reference implementation of Algorithm 1's acceptance rule for one
/// round: given per-ball bin choices (balls indexed oldest-first), each bin
/// accepts its ν oldest requests truncated at free capacity. Returns the
/// set of accepted ball indices.
fn reference_acceptance(choices: &[usize], free: &[usize]) -> Vec<bool> {
    let mut accepted = vec![false; choices.len()];
    for (bin, &bin_free) in free.iter().enumerate() {
        let mut room = bin_free;
        // Requests in global age order; take the first `room` of them.
        for (i, &b) in choices.iter().enumerate() {
            if room == 0 {
                break;
            }
            if b == bin {
                accepted[i] = true;
                room -= 1;
            }
        }
    }
    accepted
}

proptest! {
    /// The process's greedy in-order acceptance equals the per-bin
    /// "oldest min{c−ℓ, ν}" rule on the first round from empty state.
    #[test]
    fn acceptance_equals_reference_rule(
        n in 2usize..16,
        c in 1u32..4,
        choices in prop::collection::vec(0usize..16, 1..40),
    ) {
        let choices: Vec<usize> = choices.into_iter().map(|b| b % n).collect();
        let balls = choices.len();
        // λn = balls must satisfy λ <= 1 - 1/n; bypass by injecting into the
        // pool instead: lambda = 0 and pre-filled pool.
        let config = CappedConfig::new(n, c, 0.0).expect("valid");
        let mut p = CappedProcess::new(config);
        p.inject_pool(balls as u64);
        let report = p.step_with_choices(&choices);

        let reference = reference_acceptance(&choices, &vec![c as usize; n]);
        let expected_accepted = reference.iter().filter(|&&a| a).count() as u64;
        prop_assert_eq!(report.accepted, expected_accepted);
        // Bin loads after acceptance-minus-deletion match the reference.
        for bin in 0..n {
            let ref_load = choices
                .iter()
                .zip(&reference)
                .filter(|&(&b, &a)| b == bin && a)
                .count();
            let after_deletion = ref_load.saturating_sub(1);
            prop_assert_eq!(p.bin(bin).len(), after_deletion, "bin {}", bin);
        }
    }

    /// Trajectories under shared choices are identical (full determinism).
    #[test]
    fn deterministic_under_shared_choices(
        n in 2usize..12,
        c in 1u32..4,
        seed in any::<u64>(),
        rounds in 1u64..20,
    ) {
        let batch = n as u64 / 2;
        let lambda = batch as f64 / n as f64;
        let config = CappedConfig::new(n, c, lambda).expect("valid");
        let mut a = CappedProcess::new(config.clone());
        let mut b = CappedProcess::new(config);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..rounds {
            let count = a.next_throw_count();
            let choices: Vec<usize> = (0..count).map(|_| rng.uniform_bin(n)).collect();
            let ra = a.step_with_choices(&choices);
            let rb = b.step_with_choices(&choices);
            prop_assert_eq!(ra, rb);
        }
    }

    /// Buffers never exceed capacity and serve FIFO for arbitrary
    /// operation sequences.
    #[test]
    fn buffer_respects_capacity_and_fifo(
        cap in 1u32..8,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut buf = BinBuffer::new(Capacity::finite(cap).unwrap());
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut label = 0u64;
        for push in ops {
            if push {
                label += 1;
                let accepted = buf.try_accept(Ball::generated_in(label));
                if model.len() < cap as usize {
                    prop_assert!(accepted);
                    model.push_back(label);
                } else {
                    prop_assert!(!accepted);
                }
            } else {
                let served = buf.serve().map(|b| b.label());
                prop_assert_eq!(served, model.pop_front());
            }
            prop_assert_eq!(buf.len(), model.len());
            prop_assert!(buf.len() <= cap as usize);
        }
    }

    /// The pool keeps balls age-sorted through arbitrary generation bursts.
    #[test]
    fn pool_stays_sorted(counts in prop::collection::vec(0u64..10, 1..30)) {
        let mut pool = Pool::new();
        for (round, &count) in counts.iter().enumerate() {
            pool.push_generation(round as u64 + 1, count);
            prop_assert!(pool.is_age_sorted());
        }
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(pool.len() as u64, total);
    }

    /// Warm start plus stepping preserves conservation for arbitrary sizes.
    #[test]
    fn injection_preserves_conservation(
        n in 4usize..32,
        extra in 0u64..500,
        seed in any::<u64>(),
    ) {
        let batch = n as u64 / 2;
        let lambda = batch as f64 / n as f64;
        let config = CappedConfig::new(n, 2, lambda).expect("valid");
        let mut p = CappedProcess::new(config);
        p.inject_pool(extra);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..10 {
            p.step(&mut rng);
            prop_assert!(p.conserves_balls());
        }
    }
}
