//! Property-based tests of the fault-injection harness on the real CAPPED
//! process: ball conservation under arbitrary fault plans, frozen offline
//! bins, identity of the fault-free wrapper, and plan serialization.

use proptest::prelude::*;

use iba_core::{Ball, CappedConfig, CappedProcess};
use iba_sim::faults::{FaultEvent, FaultPlan, FaultedProcess};
use iba_sim::process::AllocationProcess;
use iba_sim::SimRng;

const N: usize = 24;

fn fault_event() -> BoxedStrategy<FaultEvent> {
    // Bin indices deliberately range past n so out-of-range sanitization
    // is exercised; capacity 0 encodes "unbounded" here (the wrapper
    // separately skips the malformed Some(0)).
    prop_oneof![
        prop::collection::vec(0usize..N + 8, 1..6).prop_map(|bins| FaultEvent::CrashBins { bins }),
        prop::collection::vec(0usize..N + 8, 1..6)
            .prop_map(|bins| FaultEvent::RecoverBins { bins }),
        (prop::collection::vec(0usize..N + 8, 1..6), 0u32..5).prop_map(|(bins, c)| {
            FaultEvent::DegradeCapacity {
                bins,
                capacity: (c > 0).then_some(c),
            }
        }),
        (1u64..20, 1u64..8).prop_map(|(extra_per_round, rounds)| FaultEvent::ArrivalBurst {
            extra_per_round,
            rounds,
        }),
        (1u64..60).prop_map(|extra| FaultEvent::PoolSurge { extra }),
    ]
    .boxed()
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((1u64..40, fault_event()), 0..12).prop_map(|events| {
        let mut plan = FaultPlan::new();
        for (round, event) in events {
            plan.insert(round, event);
        }
        plan
    })
}

fn capped(c: u32) -> CappedProcess {
    CappedProcess::new(CappedConfig::new(N, c, 0.5).expect("valid config"))
}

fn bin_labels(p: &CappedProcess, i: usize) -> Vec<u64> {
    p.bin(i).iter().map(Ball::label).collect()
}

proptest! {
    /// Under an arbitrary fault plan, every round conserves balls — both
    /// the per-round report law (`thrown = accepted + pool`) and the
    /// process-lifetime law (`generated = deleted + pooled + buffered`) —
    /// and the pool stays age-sorted. No fault sequence may lose or mint
    /// a ball.
    #[test]
    fn conservation_holds_under_arbitrary_plans(
        plan in fault_plan(),
        c in 1u32..4,
        seed in any::<u64>(),
    ) {
        let rounds = plan.last_round().unwrap_or(0) + 10;
        let mut p = FaultedProcess::new(capped(c), plan);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..rounds {
            let report = p.step(&mut rng);
            prop_assert!(report.conserves_balls(), "round report law broke");
            prop_assert!(p.inner().conserves_balls(), "lifetime law broke");
            prop_assert!(p.inner().pool().is_age_sorted());
        }
    }

    /// A bin that is offline during a round is completely frozen by it:
    /// its FIFO buffer after the step is byte-for-byte the buffer before
    /// the step — no service, no acceptance, no reordering.
    #[test]
    fn offline_bins_stay_frozen(
        plan in fault_plan(),
        seed in any::<u64>(),
    ) {
        let rounds = plan.last_round().unwrap_or(0) + 5;
        let mut p = FaultedProcess::new(capped(2), plan);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..rounds {
            let before: Vec<Vec<u64>> = (0..N).map(|i| bin_labels(p.inner(), i)).collect();
            p.step(&mut rng);
            // Events apply before the inner step, so a bin's post-step
            // offline flag is exactly its status throughout the round.
            for (i, snapshot) in before.iter().enumerate() {
                if p.inner().is_bin_offline(i) {
                    prop_assert_eq!(
                        &bin_labels(p.inner(), i),
                        snapshot,
                        "offline bin {} changed mid-round",
                        i
                    );
                }
            }
        }
    }

    /// With an empty plan, `FaultedProcess` is a strict identity: same
    /// per-round reports, same final state, same RNG stream position as
    /// the bare process under shared randomness.
    #[test]
    fn fault_free_wrapper_is_trajectory_identical(
        c in 1u32..4,
        seed in any::<u64>(),
        rounds in 1u64..60,
    ) {
        let mut bare = capped(c);
        let mut wrapped = FaultedProcess::new(capped(c), FaultPlan::new());
        let mut bare_rng = SimRng::seed_from(seed);
        let mut wrapped_rng = SimRng::seed_from(seed);
        for _ in 0..rounds {
            prop_assert_eq!(bare.step(&mut bare_rng), wrapped.step(&mut wrapped_rng));
        }
        prop_assert_eq!(bare_rng, wrapped_rng, "wrapper drew extra randomness");
        prop_assert_eq!(bare.loads(), wrapped.inner().loads());
        prop_assert_eq!(bare.pool_size(), wrapped.pool_size());
    }

    /// Every plan round-trips through its checksummed serialization.
    #[test]
    fn plans_roundtrip_through_serialization(plan in fault_plan()) {
        let bytes = plan.to_bytes();
        let decoded = FaultPlan::from_bytes(&bytes).expect("valid bytes decode");
        prop_assert_eq!(plan, decoded);
    }
}
