//! Property tests of the intra-round parallel kernel's determinism: the
//! partitioned scatter + fused serve must produce the scalar oracle's
//! exact trajectory for **any** worker count — the merge replays accepts,
//! rejects, and waiting times in canonical order regardless of how the
//! bins were partitioned (see `iba_core::simd`'s module docs for the
//! argument these properties pin down).

use iba_core::process::KernelMode;
use iba_core::{CappedConfig, CappedProcess};
use iba_sim::process::AllocationProcess;
use iba_sim::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any thread count in 1..=8 yields the scalar kernel's bit-exact
    /// trajectory (reports, RNG consumption, loads, and pool).
    #[test]
    fn any_thread_count_matches_the_scalar_trajectory(
        threads in 1usize..=8,
        seed in any::<u64>(),
        cell in 0usize..3,
    ) {
        const CELLS: [(usize, u32, f64); 3] = [(64, 2, 0.75), (96, 3, 0.875), (128, 1, 0.5)];
        let (n, c, lambda) = CELLS[cell];
        let config = CappedConfig::new(n, c, lambda).expect("valid cell");
        let mut par = CappedProcess::with_kernel(config.clone(), KernelMode::ArenaParallel);
        par.set_kernel_threads(threads);
        prop_assert_eq!(par.kernel_threads(), threads);
        let mut scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
        let mut rng_p = SimRng::seed_from(seed);
        let mut rng_s = SimRng::seed_from(seed);
        for round in 0..120u64 {
            let a = par.step(&mut rng_p);
            let s = scalar.step(&mut rng_s);
            prop_assert_eq!(a, s, "{} threads diverged at round {}", threads, round);
            prop_assert_eq!(rng_p.state(), rng_s.state(), "RNG diverged at round {}", round);
        }
        prop_assert_eq!(par.loads(), scalar.loads());
        prop_assert_eq!(par.pool_size(), scalar.pool_size());
        prop_assert!(par.conserves_balls());
    }

    /// Two different thread counts agree with each other round-for-round
    /// from a warm start (stationary pool sizes from the first step).
    #[test]
    fn thread_counts_agree_pairwise_from_warm_start(
        t1 in 1usize..=8,
        t2 in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let config = CappedConfig::new(128, 2, 0.875).expect("valid cell");
        let mut a = CappedProcess::with_kernel(config.clone(), KernelMode::ArenaParallel);
        let mut b = CappedProcess::with_kernel(config, KernelMode::ArenaParallel);
        a.set_kernel_threads(t1);
        b.set_kernel_threads(t2);
        a.warm_start();
        b.warm_start();
        let mut rng_a = SimRng::seed_from(seed);
        let mut rng_b = SimRng::seed_from(seed);
        for round in 0..80u64 {
            prop_assert_eq!(
                a.step(&mut rng_a),
                b.step(&mut rng_b),
                "{} vs {} threads diverged at round {}", t1, t2, round
            );
        }
        prop_assert_eq!(a.loads(), b.loads());
    }
}
