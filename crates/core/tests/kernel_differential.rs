//! Differential validation of the flat-arena round kernel: the arena
//! kernel (SoA [`iba_core::BinArena`] storage + counting-sort acceptance +
//! bulk RNG) must be **bit-exact** against the legacy scalar kernel — the
//! same [`RoundReport`] every round, including the waiting-time vectors,
//! the same RNG consumption, and the same state after any prefix — across
//! `(n, c, λ)` cells, seeds, pre-drawn choice slices, checkpoint/resume
//! round-trips, and fault injection.
//!
//! [`KernelMode::Scalar`] pins the pre-kernel implementation (one
//! `VecDeque` per bin, one RNG draw and one random-access push per ball),
//! so these tests are an executable statement of the old-vs-new
//! equivalence, not a fixture comparison.
//!
//! The SWAR ([`KernelMode::ArenaSimd`]) and intra-round multicore
//! ([`KernelMode::ArenaParallel`]) kernels are held to the same oracle:
//! every suite below that sweeps `NEW_KERNELS` proves them bit-identical
//! to the scalar reference — across faults, checkpoints, kernel switches
//! mid-run, and elastic shard membership changes.

use iba_core::checkpoint;
use iba_core::process::KernelMode;
use iba_core::{Capacity, CappedConfig, CappedProcess};
use iba_sim::faults::{FaultEvent, FaultPlan, FaultedProcess};
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::{SimRng, Simulation};

/// The `(n, c, λ)` cells every differential test sweeps: tight (c = 1),
/// paper-typical (c ∈ {2, 3}), wide-buffer (c = 8), and high-λ regimes.
/// λn must be integral for the deterministic arrival model.
const CELLS: &[(usize, u32, f64)] = &[
    (64, 2, 0.75),
    (128, 1, 0.5),
    (96, 3, 0.875),
    (256, 8, 0.9375),
];

const SEEDS: &[u64] = &[1, 42, 0xDEAD_BEEF];

/// The vectorized kernels added on top of the counting-sort arena; each
/// must match the scalar oracle bit-for-bit.
const NEW_KERNELS: &[KernelMode] = &[KernelMode::ArenaSimd, KernelMode::ArenaParallel];

/// A process running `kernel`; the parallel kernel gets a fixed worker
/// count so the tests don't depend on the host's core count.
fn with_kernel(config: CappedConfig, kernel: KernelMode) -> CappedProcess {
    let mut p = CappedProcess::with_kernel(config, kernel);
    if kernel == KernelMode::ArenaParallel {
        p.set_kernel_threads(3);
    }
    p
}

fn pair(n: usize, c: u32, lambda: f64) -> (CappedProcess, CappedProcess) {
    let config = CappedConfig::new(n, c, lambda).expect("valid cell");
    let arena = CappedProcess::with_kernel(config.clone(), KernelMode::Arena);
    let scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
    assert_eq!(arena.kernel(), KernelMode::Arena);
    assert_eq!(scalar.kernel(), KernelMode::Scalar);
    (arena, scalar)
}

/// Steps both kernels `rounds` times on identically seeded RNG streams and
/// asserts every report (and the final observable state) is equal.
fn assert_lockstep(
    arena: &mut CappedProcess,
    scalar: &mut CappedProcess,
    seed: u64,
    rounds: u64,
    what: &str,
) {
    let mut rng_a = SimRng::seed_from(seed);
    let mut rng_s = SimRng::seed_from(seed);
    for round in 0..rounds {
        let a = arena.step(&mut rng_a);
        let s = scalar.step(&mut rng_s);
        assert_eq!(a, s, "{what}: reports diverged at round {round}");
        assert_eq!(
            rng_a.state(),
            rng_s.state(),
            "{what}: RNG consumption diverged at round {round}"
        );
    }
    assert_eq!(arena.loads(), scalar.loads(), "{what}: final loads");
    assert_eq!(arena.pool_size(), scalar.pool_size(), "{what}: final pool");
    assert!(arena.conserves_balls() && scalar.conserves_balls());
}

#[test]
fn arena_kernel_is_bit_exact_across_cells_and_seeds() {
    for &(n, c, lambda) in CELLS {
        for &seed in SEEDS {
            let (mut arena, mut scalar) = pair(n, c, lambda);
            let what = format!("n={n} c={c} lambda={lambda} seed={seed}");
            assert_lockstep(&mut arena, &mut scalar, seed, 300, &what);
        }
    }
}

#[test]
fn arena_kernel_is_bit_exact_from_warm_start() {
    // Warm-started processes begin mid-regime, so the kernel is exercised
    // at stationary pool sizes from the first round.
    for &(n, c, lambda) in &[(128, 2, 0.75), (64, 4, 0.9375)] {
        let (mut arena, mut scalar) = pair(n, c, lambda);
        arena.warm_start();
        scalar.warm_start();
        let what = format!("warm n={n} c={c} lambda={lambda}");
        assert_lockstep(&mut arena, &mut scalar, 7, 200, &what);
    }
}

#[test]
fn arena_kernel_is_bit_exact_under_pre_drawn_choices() {
    // `step_with_choices` drives the kernel's slice path — the hook the
    // Lemma-1/6 coupling uses. Choices are drawn once and fed to both.
    for &(n, c, lambda) in &[(32, 2, 0.75), (48, 3, 0.875), (16, 1, 0.5)] {
        let (mut arena, mut scalar) = pair(n, c, lambda);
        let mut rng = SimRng::seed_from(1234);
        for round in 0..150 {
            let thrown = arena.next_throw_count();
            assert_eq!(thrown, scalar.next_throw_count());
            let choices: Vec<usize> = (0..thrown).map(|_| rng.uniform_bin(n)).collect();
            let a = arena.step_with_choices(&choices);
            let s = scalar.step_with_choices(&choices);
            assert_eq!(a, s, "n={n} c={c} slice path diverged at round {round}");
        }
    }
}

#[test]
fn arena_kernel_is_bit_exact_on_heterogeneous_capacities() {
    let n = 96;
    let profile: Vec<u32> = (0..n as u32).map(|i| 1 + (i % 4)).collect();
    let config = CappedConfig::new(n, 2, 0.75)
        .expect("valid")
        .with_capacity_profile(profile)
        .expect("valid profile");
    let mut arena = CappedProcess::with_kernel(config.clone(), KernelMode::Arena);
    let mut scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
    assert_lockstep(&mut arena, &mut scalar, 9, 250, "heterogeneous profile");
}

/// A fault scenario covering every event the kernel must survive: bins
/// going offline mid-run, capacity degradation below current load,
/// restoration to the configured bound, a raise to *unbounded* (which
/// forces the arena to grow its stride), bursts, and surges.
fn scenario() -> FaultPlan {
    FaultPlan::new()
        .with(
            5,
            FaultEvent::CrashBins {
                bins: vec![0, 7, 13],
            },
        )
        .with(
            8,
            FaultEvent::DegradeCapacity {
                bins: vec![2, 3],
                capacity: Some(1),
            },
        )
        .with(
            10,
            FaultEvent::ArrivalBurst {
                extra_per_round: 11,
                rounds: 3,
            },
        )
        .with(12, FaultEvent::PoolSurge { extra: 40 })
        .with(
            14,
            FaultEvent::DegradeCapacity {
                bins: vec![4],
                capacity: None, // raised to unbounded: the arena must grow
            },
        )
        .with(18, FaultEvent::RecoverBins { bins: vec![0, 7] })
        .with(
            22,
            FaultEvent::DegradeCapacity {
                bins: vec![2, 3, 4],
                capacity: Some(2),
            },
        )
        .with(25, FaultEvent::RecoverBins { bins: vec![13] })
}

#[test]
fn arena_kernel_survives_capacity_raised_past_u16() {
    // Regression: `fast_accept` packs per-bin quota into the high 16 bits
    // of a u32 register, so a fault-raised capacity past 65535 must take
    // the `counting_accept` fallback instead of corrupting the packed
    // cursor bits. The plan raises one bin far past u16::MAX mid-run and
    // later degrades it back down, while arrivals keep flowing.
    let plan = || {
        FaultPlan::new()
            .with(
                6,
                FaultEvent::DegradeCapacity {
                    bins: vec![3],
                    capacity: Some(70_000), // > u16::MAX: packed quota would wrap
                },
            )
            .with(10, FaultEvent::PoolSurge { extra: 200 })
            .with(
                20,
                FaultEvent::DegradeCapacity {
                    bins: vec![3],
                    capacity: Some(2),
                },
            )
    };
    for &seed in SEEDS {
        let config = CappedConfig::new(32, 2, 0.75).expect("valid");
        let mut arena = FaultedProcess::new(
            CappedProcess::with_kernel(config.clone(), KernelMode::Arena),
            plan(),
        );
        let mut scalar = FaultedProcess::new(
            CappedProcess::with_kernel(config, KernelMode::Scalar),
            plan(),
        );
        let mut rng_a = SimRng::seed_from(seed);
        let mut rng_s = SimRng::seed_from(seed);
        for round in 0..60 {
            let a = arena.step(&mut rng_a);
            let s = scalar.step(&mut rng_s);
            assert_eq!(a, s, "u16-raise divergence at round {round} (seed {seed})");
        }
    }
}

#[test]
fn arena_kernel_is_bit_exact_under_fault_injection() {
    for &seed in SEEDS {
        let config = CappedConfig::new(48, 2, 0.75).expect("valid");
        let mut arena = FaultedProcess::new(
            CappedProcess::with_kernel(config.clone(), KernelMode::Arena),
            scenario(),
        );
        let mut scalar = FaultedProcess::new(
            CappedProcess::with_kernel(config, KernelMode::Scalar),
            scenario(),
        );
        let mut rng_a = SimRng::seed_from(seed);
        let mut rng_s = SimRng::seed_from(seed);
        for round in 0..120 {
            let a = arena.step(&mut rng_a);
            let s = scalar.step(&mut rng_s);
            assert_eq!(a, s, "faulted divergence at round {round} (seed {seed})");
        }
    }
}

#[test]
fn telemetry_toggle_does_not_perturb_the_trajectory() {
    // Telemetry probes consume no RNG and never branch on process state,
    // so toggling the registry on must leave the faulted arena trajectory
    // bit-identical — reports and RNG consumption both — while the
    // counters actually move. This test owns the global flag: it is the
    // only test in this binary that calls `set_enabled`, and it restores
    // the flag before returning.
    let run = |enabled: bool| {
        iba_obs::set_enabled(enabled);
        let config = CappedConfig::new(48, 2, 0.75).expect("valid");
        let mut process = FaultedProcess::new(
            CappedProcess::with_kernel(config, KernelMode::Arena),
            scenario(),
        );
        let mut rng = SimRng::seed_from(42);
        let reports: Vec<RoundReport> = (0..120).map(|_| process.step(&mut rng)).collect();
        (reports, rng.state())
    };

    let registry = iba_obs::global();
    let probes = [
        registry.counter("iba_core_accepted_balls_total"),
        registry.counter("iba_core_arena_fast_accept_rounds_total"),
        registry.counter("iba_core_arena_fallback_rounds_total"),
        registry.counter("iba_core_arena_grow_total"),
    ];
    let total = |probes: &[std::sync::Arc<iba_obs::Counter>]| -> u64 {
        probes.iter().map(|c| c.get()).sum()
    };

    let before = total(&probes);
    let off = run(false);
    assert_eq!(
        total(&probes),
        before,
        "disabled probes must not move counters"
    );
    let on = run(true);
    iba_obs::set_enabled(false);
    assert_eq!(off, on, "enabling telemetry perturbed the trajectory");
    assert!(
        total(&probes) > before,
        "enabled probes should have recorded the run"
    );
}

#[test]
fn degraded_arena_bin_rejects_and_keeps_overflow() {
    // Direct (non-plan) capacity degradation on the arena path: a bin
    // holding more balls than its degraded capacity keeps them, rejects
    // new requests, and drains FIFO — same semantics as `BinBuffer`.
    let config = CappedConfig::new(4, 3, 0.5).expect("valid");
    let mut p = CappedProcess::with_kernel(config, KernelMode::Arena);
    p.inject_pool(1);
    p.step_with_choices(&[0, 0, 0]);
    assert_eq!(p.bin(0).len(), 2);
    p.set_bin_capacity(0, Capacity::finite(1).unwrap());
    let r = p.step_with_choices(&[0, 0]);
    assert_eq!(r.accepted, 0);
    assert_eq!(p.bin(0).len(), 1);
    assert!(p.conserves_balls());
}

#[test]
fn checkpoint_round_trip_resumes_bit_exactly() {
    // Arena process → checkpoint v2 → restore → both continuations agree
    // with an uninterrupted scalar run from the same seed. This pins all
    // three at once: arena vs scalar, and arena vs its own round-trip.
    for &(n, c, lambda) in &[(64, 2, 0.75), (96, 3, 0.875), (128, 1, 0.5)] {
        for &seed in &[3u64, 77] {
            let config = CappedConfig::new(n, c, lambda).expect("valid cell");
            let mut sim = Simulation::new(
                CappedProcess::with_kernel(config.clone(), KernelMode::Arena),
                SimRng::seed_from(seed),
            );
            let mut scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
            let mut scalar_rng = SimRng::seed_from(seed);
            for _ in 0..80 {
                let a = sim.step();
                let s = scalar.step(&mut scalar_rng);
                assert_eq!(a, s, "pre-checkpoint divergence (n={n} c={c})");
            }
            let bytes = checkpoint::save(&sim);
            let mut restored = checkpoint::restore(&bytes).expect("valid checkpoint");
            assert_eq!(
                restored.process().kernel(),
                KernelMode::Arena,
                "finite-capacity restores run the arena kernel"
            );
            for round in 0..80 {
                let a = sim.step();
                let r = restored.step();
                let s = scalar.step(&mut scalar_rng);
                assert_eq!(a, r, "restored run diverged at round {round}");
                assert_eq!(a, s, "post-checkpoint scalar divergence at {round}");
            }
        }
    }
}

#[test]
fn scalar_checkpoint_restores_to_arena_and_continues_identically() {
    // Checkpoints don't record the kernel mode: a scalar-kernel run's
    // checkpoint restores onto arena storage and must continue the exact
    // same trajectory as the uninterrupted scalar original.
    let config = CappedConfig::new(64, 4, 0.875).expect("valid");
    let mut sim = Simulation::new(
        CappedProcess::with_kernel(config, KernelMode::Scalar),
        SimRng::seed_from(11),
    );
    sim.run_rounds(60);
    let bytes = checkpoint::save(&sim);
    let mut restored = checkpoint::restore(&bytes).expect("valid checkpoint");
    assert_eq!(restored.process().kernel(), KernelMode::Arena);
    for round in 0..100 {
        assert_eq!(
            sim.step(),
            restored.step(),
            "cross-kernel resume diverged at round {round}"
        );
    }
}

#[test]
fn faulted_checkpoint_round_trips_through_the_arena() {
    // Degrade capacities (including a raise to unbounded) before the
    // checkpoint, so the restore must rebuild an arena whose live
    // capacities diverge from the configured profile — over-full bins and
    // all — then continue bit-exactly.
    let config = CappedConfig::new(32, 2, 0.75).expect("valid");
    let mut sim = Simulation::new(
        CappedProcess::with_kernel(config, KernelMode::Arena),
        SimRng::seed_from(23),
    );
    sim.run_rounds(30);
    sim.process_mut()
        .set_bin_capacity(1, Capacity::finite(1).unwrap());
    sim.process_mut().set_bin_capacity(5, Capacity::Infinite);
    sim.process_mut().set_bin_offline(9, true);
    sim.run_rounds(30);

    let bytes = checkpoint::save(&sim);
    let mut restored = checkpoint::restore(&bytes).expect("valid checkpoint");
    assert_eq!(
        restored.process().bin(1).capacity(),
        Capacity::finite(1).unwrap()
    );
    assert_eq!(restored.process().bin(5).capacity(), Capacity::Infinite);
    assert!(restored.process().is_bin_offline(9));
    for round in 0..80 {
        assert_eq!(
            sim.step(),
            restored.step(),
            "degraded resume diverged at round {round}"
        );
    }
}

#[test]
fn simd_kernels_are_bit_exact_across_cells_and_seeds() {
    for &kernel in NEW_KERNELS {
        for &(n, c, lambda) in CELLS {
            for &seed in SEEDS {
                let config = CappedConfig::new(n, c, lambda).expect("valid cell");
                let mut fast = with_kernel(config.clone(), kernel);
                let mut scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
                let what = format!("{kernel:?} n={n} c={c} lambda={lambda} seed={seed}");
                assert_lockstep(&mut fast, &mut scalar, seed, 300, &what);
            }
        }
    }
}

#[test]
fn simd_kernels_are_bit_exact_under_fault_injection() {
    // The fault scenario drives every irregularity the SWAR sweep must
    // detect and route around: offline windows, degraded and unbounded
    // capacities (stride growth), and pool surges.
    for &kernel in NEW_KERNELS {
        for &seed in SEEDS {
            let config = CappedConfig::new(48, 2, 0.75).expect("valid");
            let mut fast = FaultedProcess::new(with_kernel(config.clone(), kernel), scenario());
            let mut scalar = FaultedProcess::new(
                CappedProcess::with_kernel(config, KernelMode::Scalar),
                scenario(),
            );
            let mut rng_f = SimRng::seed_from(seed);
            let mut rng_s = SimRng::seed_from(seed);
            for round in 0..120 {
                let a = fast.step(&mut rng_f);
                let s = scalar.step(&mut rng_s);
                assert_eq!(a, s, "{kernel:?} faulted divergence at round {round}");
            }
        }
    }
}

#[test]
fn simd_kernels_are_bit_exact_on_heterogeneous_capacities() {
    // Non-uniform profiles force the SIMD accept to delegate to the plain
    // fast path and the parallel driver to refuse its partitioned sweep —
    // both still bit-exact.
    let n = 96;
    let profile: Vec<u32> = (0..n as u32).map(|i| 1 + (i % 4)).collect();
    let config = CappedConfig::new(n, 2, 0.75)
        .expect("valid")
        .with_capacity_profile(profile)
        .expect("valid profile");
    for &kernel in NEW_KERNELS {
        let mut fast = with_kernel(config.clone(), kernel);
        let mut scalar = CappedProcess::with_kernel(config.clone(), KernelMode::Scalar);
        let what = format!("{kernel:?} heterogeneous profile");
        assert_lockstep(&mut fast, &mut scalar, 9, 250, &what);
    }
}

#[test]
fn parallel_kernel_spawns_real_threads_and_stays_bit_exact() {
    // Rounds below the spawn threshold run the partitioned kernel inline;
    // a large pool surge pushes the throw count past it so worker threads
    // actually scatter and serve concurrently for many rounds.
    let config = CappedConfig::new(512, 2, 0.75).expect("valid");
    let mut par = with_kernel(config.clone(), KernelMode::ArenaParallel);
    par.set_kernel_threads(4);
    let mut scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
    par.inject_pool(50_000);
    scalar.inject_pool(50_000);
    let mut rng_p = SimRng::seed_from(5);
    let mut rng_s = SimRng::seed_from(5);
    for round in 0..40 {
        let a = par.step(&mut rng_p);
        let s = scalar.step(&mut rng_s);
        assert!(
            round > 0 || a.thrown > (1 << 15),
            "surge must exceed the spawn threshold"
        );
        assert_eq!(a, s, "spawned-thread divergence at round {round}");
    }
}

#[test]
fn set_kernel_switches_modes_mid_run_without_divergence() {
    // One process hops through every kernel (converting storage both
    // directions) while the reference stays scalar; the trajectory must
    // not notice.
    let schedule = [
        KernelMode::Scalar,
        KernelMode::ArenaSimd,
        KernelMode::Arena,
        KernelMode::ArenaParallel,
        KernelMode::Scalar,
        KernelMode::ArenaParallel,
    ];
    for &(n, c, lambda) in &[(64, 2, 0.75), (96, 3, 0.875)] {
        let config = CappedConfig::new(n, c, lambda).expect("valid cell");
        let mut hopper = CappedProcess::new(config.clone());
        let mut scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
        let mut rng_h = SimRng::seed_from(77);
        let mut rng_s = SimRng::seed_from(77);
        for (leg, &kernel) in schedule.iter().enumerate() {
            hopper.set_kernel(kernel);
            if kernel == KernelMode::ArenaParallel {
                hopper.set_kernel_threads(1 + leg);
            }
            assert_eq!(hopper.kernel(), kernel);
            for round in 0..40 {
                let a = hopper.step(&mut rng_h);
                let s = scalar.step(&mut rng_s);
                assert_eq!(a, s, "leg {leg} ({kernel:?}) diverged at round {round}");
            }
        }
        assert_eq!(hopper.loads(), scalar.loads());
        assert!(hopper.conserves_balls());
    }
}

#[test]
fn simd_checkpoint_restores_and_continues_identically() {
    // A checkpoint taken under the SWAR kernel restores (onto the default
    // arena kernel), is switched back to each new kernel, and continues
    // the exact trajectory of both the uninterrupted original and the
    // scalar oracle.
    for &kernel in NEW_KERNELS {
        let config = CappedConfig::new(96, 2, 0.875).expect("valid");
        let mut sim = Simulation::new(with_kernel(config.clone(), kernel), SimRng::seed_from(13));
        let mut scalar = CappedProcess::with_kernel(config, KernelMode::Scalar);
        let mut scalar_rng = SimRng::seed_from(13);
        for _ in 0..80 {
            let a = sim.step();
            let s = scalar.step(&mut scalar_rng);
            assert_eq!(a, s, "{kernel:?} pre-checkpoint divergence");
        }
        let bytes = checkpoint::save(&sim);
        let mut restored = checkpoint::restore(&bytes).expect("valid checkpoint");
        restored.process_mut().set_kernel(kernel);
        if kernel == KernelMode::ArenaParallel {
            restored.process_mut().set_kernel_threads(3);
        }
        for round in 0..80 {
            let a = sim.step();
            let r = restored.step();
            let s = scalar.step(&mut scalar_rng);
            assert_eq!(a, r, "{kernel:?} restored run diverged at round {round}");
            assert_eq!(a, s, "{kernel:?} post-checkpoint scalar divergence");
        }
    }
}

#[test]
fn overfull_uniform_restore_rearms_with_zero_room() {
    // Regression for a quota underflow: raise a bin to unbounded, overfill
    // it past c₀, degrade it back to c₀, and checkpoint. The restore
    // re-derives a *uniform* capacity profile around a bin whose load
    // exceeds c₀; the re-arm sweep must give that bin zero room
    // (`saturating_sub`), not an underflowed 16-bit quota. Every kernel
    // continues bit-exactly while the overfull bin drains.
    for &kernel in &[
        KernelMode::Arena,
        KernelMode::ArenaSimd,
        KernelMode::ArenaParallel,
    ] {
        let config = CappedConfig::new(16, 2, 0.75).expect("valid");
        let mut sim = Simulation::new(
            CappedProcess::with_kernel(config.clone(), KernelMode::Arena),
            SimRng::seed_from(19),
        );
        sim.run_rounds(10);
        sim.process_mut().set_bin_capacity(3, Capacity::Infinite);
        sim.process_mut().inject_pool(60);
        sim.run_rounds(10);
        assert!(
            sim.process().bin(3).len() > 2,
            "bin 3 must be loaded past c0"
        );
        sim.process_mut()
            .set_bin_capacity(3, Capacity::finite(2).unwrap());

        let bytes = checkpoint::save(&sim);
        let mut restored = checkpoint::restore(&bytes).expect("valid checkpoint");
        restored.process_mut().set_kernel(kernel);
        if kernel == KernelMode::ArenaParallel {
            restored.process_mut().set_kernel_threads(2);
        }
        for round in 0..60 {
            let a = sim.step();
            let r = restored.step();
            assert_eq!(a, r, "{kernel:?} overfull restore diverged at {round}");
        }
        assert!(restored.process().bin(3).len() <= 2, "bin 3 drained");
        assert!(restored.process().conserves_balls());
    }
}

#[test]
fn shard_kernels_match_through_elastic_membership_changes() {
    // BinShard-level oracle: a SWAR-kernel shard and a scalar-kernel shard
    // fed identical routed streams stay identical through bin growth and
    // shrink mid-run (the elastic-membership surface the service uses).
    use iba_core::shard::BinShard;
    use iba_core::Ball;

    for &kernel in NEW_KERNELS {
        let config = CappedConfig::new(16, 2, 0.75).expect("valid");
        let mut fast = BinShard::new(&config, 0..8).with_kernel(kernel);
        let mut scalar = BinShard::new(&config, 0..8).with_kernel(KernelMode::Scalar);
        assert_eq!(fast.kernel(), kernel);
        let mut rng = SimRng::seed_from(3);
        let mut pending: Vec<Ball> = Vec::new();
        for round in 1..=120u64 {
            // Elastic membership: grow two bins mid-run, shrink one later.
            if round == 30 || round == 45 {
                let cap = Capacity::finite(2).unwrap();
                fast.push_bin_with(cap, &[], false);
                scalar.push_bin_with(cap, &[], false);
            }
            if round == 80 {
                let (cf, bf, of) = fast.pop_bin();
                let (cs, bs, os) = scalar.pop_bin();
                assert_eq!((cf, &bf, of), (cs, &bs, os), "popped bins diverged");
                pending.extend(bf); // drained balls re-enter the stream
            }
            let bins = fast.len();
            pending.extend(std::iter::repeat_n(Ball::generated_in(round), 6));
            pending.sort();
            let requests: Vec<(u32, Ball)> = pending
                .drain(..)
                .map(|ball| (rng.uniform_bin(bins) as u32, ball))
                .collect();
            let (mut rej_f, mut rej_s) = (Vec::new(), Vec::new());
            let af = fast.accept(&requests, &mut rej_f);
            let a_s = scalar.accept(&requests, &mut rej_s);
            assert_eq!(af, a_s, "{kernel:?} accept diverged at round {round}");
            assert_eq!(rej_f, rej_s, "{kernel:?} rejects diverged at round {round}");
            let (mut sf, mut wf, mut ss, mut ws) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            let stf = fast.serve(round, &mut sf, &mut wf);
            let sts = scalar.serve(round, &mut ss, &mut ws);
            assert_eq!((stf, &sf, &wf), (sts, &ss, &ws), "serve diverged");
            assert_eq!(fast.loads(), scalar.loads(), "loads diverged");
            pending = rej_f;
        }
    }
}

#[test]
fn step_into_refills_the_report_without_divergence() {
    // The engine's allocation-free loop (`step_into` with one reused
    // report) must observe the same trajectory as fresh-report `step`.
    let config = CappedConfig::new(64, 2, 0.75).expect("valid");
    let mut a = CappedProcess::with_kernel(config.clone(), KernelMode::Arena);
    let mut b = CappedProcess::with_kernel(config, KernelMode::Arena);
    let mut rng_a = SimRng::seed_from(31);
    let mut rng_b = SimRng::seed_from(31);
    let mut reused = RoundReport::default();
    for round in 0..200 {
        b.step_into(&mut rng_b, &mut reused);
        let fresh = a.step(&mut rng_a);
        assert_eq!(reused, fresh, "step_into diverged at round {round}");
    }
}
