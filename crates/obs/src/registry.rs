//! The telemetry registry: named atomic counters, gauges and fixed-bucket
//! histograms behind a process-wide on/off switch.
//!
//! # Cost model
//!
//! Every recording primitive ([`Counter::add`], [`Gauge::set`],
//! [`Histogram::record`], …) first checks [`enabled`] — **one relaxed
//! atomic load** — and returns immediately when telemetry is off. That is
//! the entire disabled-path cost, so probes can live inside hot kernels
//! (the arena round kernel processes ~10⁶ balls per round; its probes are
//! per-*round*, not per-ball, and vanish to a load-and-branch when off).
//! When on, recording is a relaxed `fetch_add` (plus an `Instant` read for
//! timers).
//!
//! Handles are `Arc`s handed out by [`Registry::counter`] /
//! [`Registry::gauge`] / [`Registry::histogram`]; instrumented code caches
//! them in `OnceLock` statics so the registry lock is taken once per
//! metric per process, never on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently enabled. One relaxed load: this is the
/// whole disabled-path cost of every probe.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Enables telemetry if the `IBA_TELEMETRY` environment variable is set to
/// anything but `0`. Returns the resulting state.
pub fn init_from_env() -> bool {
    if std::env::var_os("IBA_TELEMETRY").is_some_and(|v| v != "0") {
        set_enabled(true);
    }
    enabled()
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-written-wins (or running-max) instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` is larger — a running peak
    /// (no-op while telemetry is disabled).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^{i−1}, 2^i − 1]`, and the last
/// bucket is unbounded (`+Inf`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A concurrent fixed-bucket histogram with power-of-two bucket bounds.
///
/// Exact counts and sums; values are bucketed by bit width, so quantile
/// queries return the *upper bound* of the containing bucket (≤ 2× the
/// true quantile — plenty for dashboards and regression alarms, and the
/// bucket layout never needs tuning). Recording is wait-free: one bucket
/// `fetch_add` plus count/sum updates, all relaxed.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for `value`: 0 for 0, otherwise the bit width of `value`
/// capped at the last bucket.
#[inline]
fn bucket_index(value: u64) -> usize {
    let width = (u64::BITS - value.leading_zeros()) as usize;
    width.min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one observation (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if enabled() {
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Records the elapsed nanoseconds since `start` (saturating at
    /// `u64::MAX`; no-op while telemetry is disabled).
    #[inline]
    pub fn record_elapsed(&self, start: Instant) {
        if enabled() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.record(nanos);
        }
    }

    /// A point-in-time copy of the histogram's state.
    ///
    /// Buckets, count and sum are loaded independently, so a snapshot
    /// taken mid-record may be transiently inconsistent by one
    /// observation — acceptable for monitoring, which is the only
    /// consumer.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// An owned copy of a [`Histogram`]'s buckets with query and merge
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bound`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean of the recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`None` if empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound(i));
            }
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Upper bound of the highest non-empty bucket (`None` if empty).
    pub fn max_bound(&self) -> Option<u64> {
        self.buckets.iter().rposition(|&c| c > 0).map(bucket_bound)
    }
}

/// The set of registered metrics, keyed by name.
///
/// Names must match the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; kinds are disjoint (a counter and a gauge
/// may not share a name).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// Creates an empty registry (tests; production code uses
    /// [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name or is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            !self.gauges.lock().unwrap().contains_key(name)
                && !self.histograms.lock().unwrap().contains_key(name),
            "metric {name:?} already registered as a different kind"
        );
        self.counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name or is already
    /// registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            !self.counters.lock().unwrap().contains_key(name)
                && !self.histograms.lock().unwrap().contains_key(name),
            "metric {name:?} already registered as a different kind"
        );
        self.gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name or is already
    /// registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            !self.counters.lock().unwrap().contains_key(name)
                && !self.gauges.lock().unwrap().contains_key(name),
            "metric {name:?} already registered as a different kind"
        );
        self.histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A consistent, sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric (metrics stay registered). Used by
    /// tests and the overhead bench to isolate measurement windows.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

/// Sorted point-in-time values of every metric in a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The process-wide registry every probe in the workspace records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Starts timing a phase: captures `Instant::now()` only while telemetry
/// is enabled, so a disabled timer costs one relaxed load and never reads
/// the clock.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer(Option<Instant>);

impl PhaseTimer {
    /// Starts the timer (disabled → inert).
    #[inline]
    pub fn start() -> Self {
        PhaseTimer(if enabled() {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Records the elapsed nanoseconds into `hist` if the timer was live.
    #[inline]
    pub fn observe(self, hist: &Histogram) {
        if let Some(start) = self.0 {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global switch.
    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_probes_record_nothing() {
        set_enabled(false);
        let c = Counter::default();
        let g = Gauge::default();
        let h = Histogram::default();
        c.inc();
        g.set(9);
        g.record_max(9);
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn enabled_probes_record() {
        with_telemetry(|| {
            let c = Counter::default();
            c.add(2);
            c.inc();
            assert_eq!(c.get(), 3);

            let g = Gauge::default();
            g.set(5);
            g.record_max(3);
            assert_eq!(g.get(), 5);
            g.record_max(8);
            assert_eq!(g.get(), 8);

            let h = Histogram::default();
            for v in [0, 1, 2, 3, 1000] {
                h.record(v);
            }
            let s = h.snapshot();
            assert_eq!(s.count, 5);
            assert_eq!(s.sum, 1006);
            assert_eq!(s.buckets[0], 1); // value 0
            assert_eq!(s.buckets[1], 1); // value 1
            assert_eq!(s.buckets[2], 2); // values 2, 3
            assert_eq!(s.buckets[10], 1); // 1000 ∈ [512, 1023]
        });
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every value lands in the bucket whose bound is the smallest
        // bound ≥ value.
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 1 << 40] {
            let i = bucket_index(v);
            assert!(bucket_bound(i) >= v);
            if i > 0 {
                assert!(bucket_bound(i - 1) < v);
            }
        }
    }

    #[test]
    fn snapshot_quantiles_return_bucket_bounds() {
        with_telemetry(|| {
            let h = Histogram::default();
            for v in 1..=100u64 {
                h.record(v);
            }
            let s = h.snapshot();
            assert_eq!(s.count, 100);
            // True p50 = 50 → bucket [32, 63] → bound 63.
            assert_eq!(s.quantile(0.5), Some(63));
            assert_eq!(s.quantile(1.0), Some(127));
            assert_eq!(s.max_bound(), Some(127));
            assert!((s.mean() - 50.5).abs() < 1e-9);
        });
    }

    #[test]
    fn empty_snapshot_queries() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.max_bound(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_adds_observations() {
        with_telemetry(|| {
            let a = Histogram::default();
            let b = Histogram::default();
            a.record(1);
            b.record(1);
            b.record(100);
            let mut sa = a.snapshot();
            sa.merge(&b.snapshot());
            assert_eq!(sa.count, 3);
            assert_eq!(sa.sum, 102);
            assert_eq!(sa.buckets[1], 2);
        });
    }

    #[test]
    fn registry_get_or_create_returns_same_metric() {
        with_telemetry(|| {
            let r = Registry::new();
            let c1 = r.counter("x_total");
            let c2 = r.counter("x_total");
            c1.inc();
            assert_eq!(c2.get(), 1);
            let snap = r.snapshot();
            assert_eq!(snap.counters, vec![("x_total".to_string(), 1)]);
            r.reset();
            assert_eq!(r.counter("x_total").get(), 0);
        });
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn cross_kind_collision_panics() {
        let r = Registry::new();
        r.counter("dual");
        r.gauge("dual");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("9starts_with_digit");
    }

    #[test]
    fn snapshot_is_name_sorted() {
        with_telemetry(|| {
            let r = Registry::new();
            r.counter("b_total");
            r.counter("a_total");
            r.gauge("z");
            r.histogram("h_nanos");
            let s = r.snapshot();
            assert_eq!(s.counters[0].0, "a_total");
            assert_eq!(s.counters[1].0, "b_total");
            assert_eq!(s.gauges[0].0, "z");
            assert_eq!(s.histograms[0].0, "h_nanos");
        });
    }

    #[test]
    fn phase_timer_inert_when_disabled() {
        set_enabled(false);
        let h = Histogram::default();
        let t = PhaseTimer::start();
        t.observe(&h);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn phase_timer_records_when_enabled() {
        with_telemetry(|| {
            let h = Histogram::default();
            let t = PhaseTimer::start();
            t.observe(&h);
            assert_eq!(h.snapshot().count, 1);
        });
    }
}
