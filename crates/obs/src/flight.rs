//! The flight recorder: a fixed-size ring buffer of recent round-level
//! events, dumped as a JSON post-mortem when something goes wrong.
//!
//! Processes record one [`RoundSample`] per completed round (only while
//! telemetry is enabled — the disabled path is the usual single relaxed
//! load). Fault injection and invariant checks add [`FlightEvent::Marker`]
//! entries. On a panic (see [`install_panic_hook`]), an invariant
//! violation, or — when [`set_dump_on_fault`] is armed — a fault trigger,
//! [`PostMortem::capture`] freezes the last N events together with a full
//! registry snapshot, so a misbehaving million-bin run leaves evidence
//! instead of a bare backtrace.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

use crate::json::{self, JsonObjWriter, JsonValue, Provenance};
use crate::registry::{enabled, global};
use crate::sink::snapshot_to_json_line;

static RUN_CONTEXT: Mutex<Option<Provenance>> = Mutex::new(None);

/// Installs the run's provenance (git revision, host, kernel mode, thread
/// count) so post-mortem dumps — and the `/metrics` run-info sample — are
/// attributable. Binaries call this once at startup; `None` values in the
/// provenance simply stay absent from the dumps.
pub fn set_run_context(provenance: Provenance) {
    *RUN_CONTEXT.lock().unwrap() = Some(provenance);
}

/// The provenance installed by [`set_run_context`], if any.
pub fn run_context() -> Option<Provenance> {
    RUN_CONTEXT.lock().unwrap().clone()
}

/// Default number of events the ring retains.
pub const DEFAULT_CAPACITY: usize = 256;

/// One round of a process, at `RoundReport` granularity (fixed-size: the
/// per-ball waiting times are deliberately not retained).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundSample {
    /// Round number.
    pub round: u64,
    /// Balls generated this round.
    pub generated: u64,
    /// Balls accepted into buffers this round.
    pub accepted: u64,
    /// Balls served (deleted) this round.
    pub deleted: u64,
    /// Non-empty offline bins that could not serve.
    pub failed_deletions: u64,
    /// Pool size after the round.
    pub pool_size: u64,
    /// Balls buffered across all bins after the round.
    pub buffered: u64,
    /// Maximum bin load after the round.
    pub max_load: u64,
}

/// One entry in the flight-recorder ring.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    /// A completed round.
    Round(RoundSample),
    /// A point annotation: fault injections, invariant violations, phase
    /// changes.
    Marker {
        /// Round the marker applies to.
        round: u64,
        /// Free-form label, e.g. `fault:crash_bins:64`.
        label: String,
    },
}

impl FlightEvent {
    fn to_json(&self) -> String {
        match self {
            FlightEvent::Round(s) => {
                let mut w = JsonObjWriter::new();
                w.field_str("kind", "round");
                w.field_u64("round", s.round);
                w.field_u64("generated", s.generated);
                w.field_u64("accepted", s.accepted);
                w.field_u64("deleted", s.deleted);
                w.field_u64("failed_deletions", s.failed_deletions);
                w.field_u64("pool_size", s.pool_size);
                w.field_u64("buffered", s.buffered);
                w.field_u64("max_load", s.max_load);
                w.finish()
            }
            FlightEvent::Marker { round, label } => {
                let mut w = JsonObjWriter::new();
                w.field_str("kind", "marker");
                w.field_u64("round", *round);
                w.field_str("label", label);
                w.finish()
            }
        }
    }

    fn from_json(v: &JsonValue) -> Option<FlightEvent> {
        let u = |k: &str| v.get(k)?.as_u64();
        match v.get("kind")?.as_str()? {
            "round" => Some(FlightEvent::Round(RoundSample {
                round: u("round")?,
                generated: u("generated")?,
                accepted: u("accepted")?,
                deleted: u("deleted")?,
                failed_deletions: u("failed_deletions")?,
                pool_size: u("pool_size")?,
                buffered: u("buffered")?,
                max_load: u("max_load")?,
            })),
            "marker" => Some(FlightEvent::Marker {
                round: u("round")?,
                label: v.get("label")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
}

/// The ring buffer of recent events. One instance per process — use
/// [`recorder`].
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    fn new() -> Self {
        FlightRecorder {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(DEFAULT_CAPACITY),
                capacity: DEFAULT_CAPACITY,
                dropped: 0,
            }),
        }
    }

    fn push(&self, event: FlightEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Records a completed round (no-op while telemetry is disabled).
    #[inline]
    pub fn record_round(&self, sample: RoundSample) {
        if enabled() {
            self.push(FlightEvent::Round(sample));
        }
    }

    /// Records a marker (no-op while telemetry is disabled).
    #[inline]
    pub fn record_marker(&self, round: u64, label: &str) {
        if enabled() {
            self.push(FlightEvent::Marker {
                round,
                label: label.to_string(),
            });
        }
    }

    /// Resizes the ring (oldest events are dropped if shrinking).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn set_capacity(&self, capacity: usize) {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        let mut ring = self.ring.lock().unwrap();
        while ring.events.len() > capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.capacity = capacity;
    }

    /// Empties the ring and resets the dropped count.
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap();
        ring.events.clear();
        ring.dropped = 0;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.lock().unwrap().events.iter().cloned().collect()
    }

    /// How many events have been evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }
}

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(FlightRecorder::new)
}

static DUMP_ON_FAULT: AtomicBool = AtomicBool::new(false);

/// Arms or disarms post-mortem dumping on fault triggers (disarmed by
/// default: fault injections always leave a marker, but chaos experiments
/// firing thousands of scripted faults should not each write a dump).
pub fn set_dump_on_fault(on: bool) {
    DUMP_ON_FAULT.store(on, Ordering::SeqCst);
}

/// Records a fault-trigger marker and, if armed via [`set_dump_on_fault`],
/// writes a post-mortem to stderr. No-op while telemetry is disabled.
pub fn fault_triggered(round: u64, label: &str) {
    if !enabled() {
        return;
    }
    recorder().record_marker(round, label);
    if DUMP_ON_FAULT.load(Ordering::Relaxed) {
        eprintln!(
            "{}",
            PostMortem::capture(&format!("fault:{label}")).to_json()
        );
    }
}

/// A frozen post-mortem: why it was taken, the recent events, and the full
/// registry state at capture time.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// Why the dump was taken (`panic`, `invariant:...`, `fault:...`).
    pub reason: String,
    /// Events evicted from the ring before capture.
    pub dropped: u64,
    /// The run's provenance (git rev, kernel mode, thread count), when a
    /// binary installed one via [`set_run_context`] — so panics in chaos
    /// runs are attributable to a revision and configuration.
    pub provenance: Option<Provenance>,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// The registry snapshot rendered as a JSON object (raw).
    pub telemetry: String,
}

impl PostMortem {
    /// Captures the current flight-recorder contents and registry state.
    pub fn capture(reason: &str) -> Self {
        PostMortem {
            reason: reason.to_string(),
            dropped: recorder().dropped(),
            provenance: run_context(),
            events: recorder().events(),
            telemetry: snapshot_to_json_line(&global().snapshot()),
        }
    }

    /// Renders the post-mortem as one JSON line
    /// (`{"schema":1,"kind":"postmortem",...}`).
    pub fn to_json(&self) -> String {
        let mut w = JsonObjWriter::with_schema();
        w.field_str("kind", "postmortem");
        w.field_str("reason", &self.reason);
        w.field_u64("dropped", self.dropped);
        if let Some(prov) = &self.provenance {
            w.field_raw("provenance", &prov.to_json_object());
        }
        let events: Vec<String> = self.events.iter().map(FlightEvent::to_json).collect();
        w.field_raw_array("events", &events);
        w.field_raw("telemetry", &self.telemetry);
        w.finish()
    }

    /// Parses a dump produced by [`PostMortem::to_json`] back into a
    /// `PostMortem` (the round-trip the CI smoke job asserts).
    ///
    /// # Errors
    ///
    /// Returns a [`json::JsonError`] if the input is not valid JSON or
    /// does not have the post-mortem shape.
    pub fn from_json(input: &str) -> Result<PostMortem, json::JsonError> {
        let v = json::parse(input)?;
        let shape = |message: &str| json::JsonError {
            offset: 0,
            message: message.to_string(),
        };
        if v.get("kind").and_then(JsonValue::as_str) != Some("postmortem") {
            return Err(shape("not a postmortem dump"));
        }
        if v.get("schema").and_then(JsonValue::as_u64) != Some(json::SCHEMA_VERSION) {
            return Err(shape("unsupported schema version"));
        }
        let reason = v
            .get("reason")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| shape("missing reason"))?
            .to_string();
        let dropped = v
            .get("dropped")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| shape("missing dropped"))?;
        let provenance = match v.get("provenance") {
            None => None,
            Some(p) => {
                Some(Provenance::from_value(p).ok_or_else(|| shape("malformed provenance"))?)
            }
        };
        let events = v
            .get("events")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| shape("missing events"))?
            .iter()
            .map(|e| FlightEvent::from_json(e).ok_or_else(|| shape("malformed event")))
            .collect::<Result<Vec<_>, _>>()?;
        let telemetry = v
            .get("telemetry")
            .ok_or_else(|| shape("missing telemetry"))?;
        // Re-render the telemetry object so `to_json` of the round-tripped
        // value is stable (field order is preserved by the parser).
        Ok(PostMortem {
            reason,
            dropped,
            provenance,
            events,
            telemetry: render_value(telemetry),
        })
    }
}

/// Re-renders a parsed [`JsonValue`] to canonical single-line JSON
/// (object field order preserved).
fn render_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(n) => json::number(*n),
        JsonValue::String(s) => json::quoted(s),
        JsonValue::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}:{}", json::quoted(k), render_value(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Installs a panic hook (once) that appends a post-mortem dump to stderr
/// after the default hook runs, and writes it to the path in the
/// `IBA_POSTMORTEM` environment variable if set. Inert while telemetry is
/// disabled.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            if enabled() {
                let dump = PostMortem::capture("panic").to_json();
                eprintln!("{dump}");
                if let Some(path) = std::env::var_os("IBA_POSTMORTEM") {
                    let _ = std::fs::write(path, dump);
                }
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::set_enabled;

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    fn sample(round: u64) -> RoundSample {
        RoundSample {
            round,
            generated: 10,
            accepted: 8,
            deleted: 7,
            failed_deletions: 0,
            pool_size: 3,
            buffered: 5,
            max_load: 2,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        set_enabled(false);
        let r = FlightRecorder::new();
        r.record_round(sample(1));
        r.record_marker(1, "x");
        assert!(r.events().is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        with_telemetry(|| {
            let r = FlightRecorder::new();
            r.set_capacity(3);
            for round in 1..=5 {
                r.record_round(sample(round));
            }
            let events = r.events();
            assert_eq!(events.len(), 3);
            assert_eq!(r.dropped(), 2);
            match &events[0] {
                FlightEvent::Round(s) => assert_eq!(s.round, 3),
                other => panic!("unexpected event {other:?}"),
            }
            r.clear();
            assert!(r.events().is_empty());
            assert_eq!(r.dropped(), 0);
        });
    }

    #[test]
    fn shrinking_capacity_drops_oldest() {
        with_telemetry(|| {
            let r = FlightRecorder::new();
            for round in 1..=4 {
                r.record_round(sample(round));
            }
            r.set_capacity(2);
            assert_eq!(r.events().len(), 2);
            assert_eq!(r.dropped(), 2);
        });
    }

    #[test]
    fn post_mortem_round_trips() {
        with_telemetry(|| {
            recorder().clear();
            recorder().record_round(sample(41));
            recorder().record_marker(42, "fault:crash_bins:3 \"quoted\"");
            recorder().record_round(sample(42));
            let pm = PostMortem::capture("invariant:conservation");
            let dump = pm.to_json();
            let back = PostMortem::from_json(&dump).unwrap();
            assert_eq!(back.reason, pm.reason);
            assert_eq!(back.dropped, pm.dropped);
            assert_eq!(back.events, pm.events);
            // The re-rendered dump is itself parseable and stable.
            assert_eq!(
                PostMortem::from_json(&back.to_json()).unwrap().events,
                pm.events
            );
            recorder().clear();
        });
    }

    /// Satellite guarantee: a chaos-run panic dump carries the run's
    /// provenance — git revision, kernel mode, thread count — and every
    /// field survives the JSON round-trip.
    #[test]
    fn post_mortem_carries_run_provenance_through_json() {
        with_telemetry(|| {
            let prov = Provenance {
                schema_version: json::SCHEMA_VERSION,
                git_rev: "deadbeefcafe".into(),
                git_dirty: true,
                host: "chaos-runner".into(),
                cores: 16,
                kernel: Some("arena_parallel".into()),
                threads: Some(8),
            };
            set_run_context(prov.clone());
            recorder().clear();
            recorder().record_marker(3, "fault:crash_bins:2");
            let pm = PostMortem::capture("panic");
            let back = PostMortem::from_json(&pm.to_json()).unwrap();
            let got = back.provenance.expect("provenance attached to the dump");
            assert_eq!(got, prov);
            assert_eq!(got.git_rev, "deadbeefcafe");
            assert_eq!(got.kernel.as_deref(), Some("arena_parallel"));
            assert_eq!(got.threads, Some(8));
            assert!(got.git_dirty);
            // A malformed provenance object is rejected, not ignored.
            let bad = pm.to_json().replace("\"git_rev\":\"deadbeefcafe\",", "");
            assert!(PostMortem::from_json(&bad).is_err());
            *RUN_CONTEXT.lock().unwrap() = None;
            recorder().clear();
        });
    }

    #[test]
    fn from_json_rejects_other_lines() {
        assert!(PostMortem::from_json("{\"schema\":1}").is_err());
        assert!(PostMortem::from_json("nonsense").is_err());
        assert!(PostMortem::from_json("{\"schema\":99,\"kind\":\"postmortem\"}").is_err());
    }

    #[test]
    fn fault_trigger_leaves_marker() {
        with_telemetry(|| {
            recorder().clear();
            set_dump_on_fault(false);
            fault_triggered(7, "crash_bins:2");
            let events = recorder().events();
            assert_eq!(
                events,
                vec![FlightEvent::Marker {
                    round: 7,
                    label: "crash_bins:2".to_string()
                }]
            );
            recorder().clear();
        });
    }
}
