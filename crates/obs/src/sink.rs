//! The JSON-lines telemetry sink: renders registry snapshots as one JSON
//! object per line and appends them to any `io::Write`.
//!
//! Histograms are summarized (count, sum, mean, bucket-bound quantiles,
//! max) rather than dumped bucket-by-bucket — the full-resolution view is
//! the Prometheus exposition ([`crate::expo`]); the JSONL sink is for
//! time-series logs read next to [`ServeSnapshot`] lines.
//!
//! [`ServeSnapshot`]: https://docs.rs/iba-serve

use std::io;

use crate::json::JsonObjWriter;
use crate::registry::{HistogramSnapshot, Registry, RegistrySnapshot};

/// Renders one histogram summary as a JSON object.
fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut w = JsonObjWriter::new();
    w.field_u64("count", h.count);
    w.field_u64("sum", h.sum);
    w.field_f64_fixed("mean", h.mean(), 6);
    match (
        h.quantile(0.5),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max_bound(),
    ) {
        (Some(p50), Some(p99), Some(p999), Some(max)) => {
            w.field_u64("p50", p50);
            w.field_u64("p99", p99);
            w.field_u64("p999", p999);
            w.field_u64("max", max);
        }
        _ => {
            w.field_null("p50");
            w.field_null("p99");
            w.field_null("p999");
            w.field_null("max");
        }
    }
    w.finish()
}

/// Renders a registry snapshot as one JSON line:
/// `{"schema":1,"kind":"telemetry","counters":{...},"gauges":{...},"histograms":{...}}`.
pub fn snapshot_to_json_line(snapshot: &RegistrySnapshot) -> String {
    let mut w = JsonObjWriter::with_schema();
    w.field_str("kind", "telemetry");

    let mut counters = JsonObjWriter::new();
    for (name, value) in &snapshot.counters {
        counters.field_u64(name, *value);
    }
    w.field_raw("counters", &counters.finish());

    let mut gauges = JsonObjWriter::new();
    for (name, value) in &snapshot.gauges {
        gauges.field_u64(name, *value);
    }
    w.field_raw("gauges", &gauges.finish());

    let mut histograms = JsonObjWriter::new();
    for (name, hist) in &snapshot.histograms {
        histograms.field_raw(name, &histogram_json(hist));
    }
    w.field_raw("histograms", &histograms.finish());
    w.finish()
}

/// An append-only JSON-lines writer.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    writer: W,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Appends one pre-rendered line (a trailing newline is added).
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O errors.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Appends the registry's current state as one telemetry line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O errors.
    pub fn write_registry(&mut self, registry: &Registry) -> io::Result<()> {
        self.write_line(&snapshot_to_json_line(&registry.snapshot()))
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O errors.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::registry::{set_enabled, Registry};
    use std::sync::Mutex;

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn telemetry_line_shape() {
        with_telemetry(|| {
            let r = Registry::new();
            r.counter("requests_total").add(5);
            r.gauge("pool").set(2);
            let h = r.histogram("lat_nanos");
            h.record(3);
            let line = snapshot_to_json_line(&r.snapshot());
            let v = parse(&line).unwrap();
            assert_eq!(v.get("schema").and_then(JsonValue::as_u64), Some(1));
            assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("telemetry"));
            let counters = v.get("counters").unwrap();
            assert_eq!(
                counters.get("requests_total").and_then(JsonValue::as_u64),
                Some(5)
            );
            let hist = v.get("histograms").unwrap().get("lat_nanos").unwrap();
            assert_eq!(hist.get("count").and_then(JsonValue::as_u64), Some(1));
            assert_eq!(hist.get("p50").and_then(JsonValue::as_u64), Some(3));
        });
    }

    #[test]
    fn empty_histogram_quantiles_are_null() {
        with_telemetry(|| {
            let r = Registry::new();
            r.histogram("empty_nanos");
            let line = snapshot_to_json_line(&r.snapshot());
            let v = parse(&line).unwrap();
            let hist = v.get("histograms").unwrap().get("empty_nanos").unwrap();
            assert_eq!(hist.get("p50"), Some(&JsonValue::Null));
        });
    }

    #[test]
    fn sink_appends_lines() {
        with_telemetry(|| {
            let r = Registry::new();
            r.counter("x_total").inc();
            let mut sink = JsonlSink::new(Vec::new());
            sink.write_registry(&r).unwrap();
            sink.write_line("{\"schema\":1}").unwrap();
            let buf = sink.into_inner().unwrap();
            let text = String::from_utf8(buf).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(parse(lines[0]).is_ok());
            assert!(parse(lines[1]).is_ok());
        });
    }
}
