//! The workspace's single hand-rolled JSON implementation: an append-only
//! object writer for JSON-lines emission and a small recursive-descent
//! parser for validating and round-tripping what we wrote.
//!
//! Every JSONL producer in the workspace (`ServeSnapshot`, sweep outputs,
//! the telemetry sink, flight-recorder post-mortems) renders through
//! [`JsonObjWriter`] so string escaping and the leading [`SCHEMA_VERSION`]
//! field are implemented exactly once. The build environment is std-only
//! (no `serde_json`), hence hand-rolled.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version stamped into every JSON line the workspace emits (the `schema`
/// field). Bump when a line format changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// FNV-1a 64-bit hash. Used for content-hashing experiment configurations:
/// unlike `DefaultHasher` it is specified, stable across Rust releases and
/// platforms, and trivially re-implementable by external tooling reading
/// the registry.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content hash of an ordered `key=value` configuration list, rendered as
/// `fnv1a:<16 hex digits>`. The canonical form is `k=v;` pairs in the
/// given order — callers must list parameters in a fixed order so the
/// same configuration always hashes identically.
pub fn content_hash(pairs: &[(String, String)]) -> String {
    let mut canon = String::new();
    for (k, v) in pairs {
        canon.push_str(k);
        canon.push('=');
        canon.push_str(v);
        canon.push(';');
    }
    format!("fnv1a:{:016x}", fnv1a64(canon.as_bytes()))
}

/// Run provenance: where, when-ish (git), and on what hardware a
/// measurement was taken. Every registry record, stamped `BENCH_*.json`
/// baseline and flight-recorder post-mortem carries one of these so a
/// number can always be traced back to the code revision and host that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// JSON schema version ([`SCHEMA_VERSION`] at emission time).
    pub schema_version: u64,
    /// Git revision of the working tree (`unknown` when no repository or
    /// git binary is reachable).
    pub git_rev: String,
    /// Whether the working tree had uncommitted changes (best effort;
    /// `false` when it could not be determined).
    pub git_dirty: bool,
    /// Hostname of the machine that ran the measurement.
    pub host: String,
    /// `std::thread::available_parallelism()` on that machine.
    pub cores: u64,
    /// Acceptance-kernel mode, when the run had one (`scalar`, `arena`,
    /// `arena_simd`, `arena_parallel`).
    pub kernel: Option<String>,
    /// Resolved kernel worker-thread count, when the run had one.
    pub threads: Option<u64>,
}

impl Provenance {
    /// Collects provenance for the current process: git revision + dirty
    /// flag (via the `git` binary, falling back to reading `.git/HEAD`
    /// directly, falling back to `unknown`), hostname, and core count.
    /// Never fails — absent information degrades to placeholders.
    pub fn collect() -> Provenance {
        let (git_rev, git_dirty) = git_describe();
        Provenance {
            schema_version: SCHEMA_VERSION,
            git_rev,
            git_dirty,
            host: hostname(),
            cores: std::thread::available_parallelism().map_or(1, |c| c.get() as u64),
            kernel: None,
            threads: None,
        }
    }

    /// Returns `self` with the kernel mode and thread count attached.
    pub fn with_kernel(mut self, kernel: &str, threads: usize) -> Provenance {
        self.kernel = Some(kernel.to_string());
        self.threads = Some(threads as u64);
        self
    }

    /// Renders the provenance as a single-line JSON object.
    pub fn to_json_object(&self) -> String {
        let mut w = JsonObjWriter::new();
        w.field_u64("schema_version", self.schema_version);
        w.field_str("git_rev", &self.git_rev);
        w.field_bool("git_dirty", self.git_dirty);
        w.field_str("host", &self.host);
        w.field_u64("cores", self.cores);
        if let Some(kernel) = &self.kernel {
            w.field_str("kernel", kernel);
        }
        if let Some(threads) = self.threads {
            w.field_u64("threads", threads);
        }
        w.finish()
    }

    /// Parses a provenance object written by [`Provenance::to_json_object`].
    /// `None` if any required field is missing or mistyped.
    pub fn from_value(v: &JsonValue) -> Option<Provenance> {
        Some(Provenance {
            schema_version: v.get("schema_version")?.as_u64()?,
            git_rev: v.get("git_rev")?.as_str()?.to_string(),
            git_dirty: match v.get("git_dirty")? {
                JsonValue::Bool(b) => *b,
                _ => return None,
            },
            host: v.get("host")?.as_str()?.to_string(),
            cores: v.get("cores")?.as_u64()?,
            kernel: v.get("kernel").and_then(|k| k.as_str()).map(str::to_string),
            threads: v.get("threads").and_then(JsonValue::as_u64),
        })
    }
}

/// Best-effort hostname: `/proc/sys/kernel/hostname`, then `$HOSTNAME`,
/// then a placeholder.
fn hostname() -> String {
    if let Ok(name) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let name = name.trim();
        if !name.is_empty() {
            return name.to_string();
        }
    }
    match std::env::var("HOSTNAME") {
        Ok(name) if !name.trim().is_empty() => name.trim().to_string(),
        _ => "unknown-host".to_string(),
    }
}

/// Best-effort `(git_rev, dirty)`: asks the `git` binary first, then reads
/// the `.git/HEAD` reference chain directly (covers hosts without git in
/// `PATH`), then gives up with `("unknown", false)`.
fn git_describe() -> (String, bool) {
    if let Some(rev) = git_command(&["rev-parse", "HEAD"]) {
        let dirty = git_command(&["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
        return (rev, dirty);
    }
    (
        read_git_head().unwrap_or_else(|| "unknown".to_string()),
        false,
    )
}

/// Runs `git <args>` and returns trimmed stdout on success.
fn git_command(args: &[&str]) -> Option<String> {
    let out = std::process::Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

/// Resolves HEAD by walking up from the current directory to the nearest
/// `.git` and following one level of `ref:` indirection (loose ref file or
/// `packed-refs`).
fn read_git_head() -> Option<String> {
    let mut dir: PathBuf = std::env::current_dir().ok()?;
    let git_dir = loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    match head.strip_prefix("ref: ") {
        None => Some(head.to_string()), // detached HEAD: the hash itself
        Some(reference) => resolve_git_ref(&git_dir, reference),
    }
}

fn resolve_git_ref(git_dir: &Path, reference: &str) -> Option<String> {
    if let Ok(hash) = std::fs::read_to_string(git_dir.join(reference)) {
        return Some(hash.trim().to_string());
    }
    let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
    packed.lines().find_map(|line| {
        let (hash, name) = line.split_once(' ')?;
        (name == reference).then(|| hash.to_string())
    })
}

/// Appends `s` to `out` as the *contents* of a JSON string (no surrounding
/// quotes), escaping quotes, backslashes and control characters per
/// RFC 8259.
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a quoted, escaped JSON string literal.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders an `f64` the way the workspace's JSON lines expect: finite
/// values via Rust's shortest round-trip formatting, non-finite values as
/// `null` (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for one JSON object rendered onto a single line.
///
/// # Examples
///
/// ```
/// use iba_obs::json::JsonObjWriter;
/// let mut w = JsonObjWriter::with_schema();
/// w.field_u64("round", 7);
/// w.field_str("label", "a \"quoted\" name");
/// assert_eq!(
///     w.finish(),
///     "{\"schema\":1,\"round\":7,\"label\":\"a \\\"quoted\\\" name\"}"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct JsonObjWriter {
    buf: String,
    needs_comma: bool,
}

impl Default for JsonObjWriter {
    fn default() -> Self {
        JsonObjWriter::new()
    }
}

impl JsonObjWriter {
    /// Starts an empty object (`{`).
    pub fn new() -> Self {
        JsonObjWriter {
            buf: String::from("{"),
            needs_comma: false,
        }
    }

    /// Starts an object whose first field is `"schema":`[`SCHEMA_VERSION`].
    pub fn with_schema() -> Self {
        let mut w = JsonObjWriter::new();
        w.field_u64("schema", SCHEMA_VERSION);
        w
    }

    fn key(&mut self, name: &str) {
        if self.needs_comma {
            self.buf.push(',');
        }
        self.needs_comma = true;
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        let _ = write!(self.buf, "{v}");
    }

    /// Appends a signed integer field.
    pub fn field_i64(&mut self, name: &str, v: i64) {
        self.key(name);
        let _ = write!(self.buf, "{v}");
    }

    /// Appends a floating-point field (shortest round-trip formatting;
    /// non-finite values render as `null`).
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        self.buf.push_str(&number(v));
    }

    /// Appends a floating-point field with fixed decimal `precision`
    /// (non-finite values render as `null`).
    pub fn field_f64_fixed(&mut self, name: &str, v: f64, precision: usize) {
        self.key(name);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.precision$}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Appends a string field (escaped).
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Appends a `null` field.
    pub fn field_null(&mut self, name: &str) {
        self.key(name);
        self.buf.push_str("null");
    }

    /// Appends a field whose value is `raw`, already-rendered JSON. The
    /// caller is responsible for `raw` being well-formed.
    pub fn field_raw(&mut self, name: &str, raw: &str) {
        self.key(name);
        self.buf.push_str(raw);
    }

    /// Appends an array field of unsigned integers.
    pub fn field_u64_array(&mut self, name: &str, values: &[u64]) {
        self.key(name);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
    }

    /// Appends an array field of already-rendered JSON values.
    pub fn field_raw_array(&mut self, name: &str, values: &[String]) {
        self.key(name);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(v);
        }
        self.buf.push(']');
    }

    /// Closes the object (`}`) and returns the rendered line (no trailing
    /// newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
///
/// Objects preserve field order (a `Vec` of pairs, not a map): the
/// round-trip tests compare emitted and re-parsed lines field-for-field.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source field order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    ///
    /// The upper bound is **exclusive** of 2⁶⁴: `u64::MAX as f64` rounds
    /// *up* to 2⁶⁴ (not representable in `u64`), so an inclusive
    /// comparison against it would accept a parsed 2⁶⁴ and silently
    /// saturate on the `as u64` cast. The largest accepted value is
    /// therefore 2⁶⁴ − 2048, the largest `f64` below 2⁶⁴.
    pub fn as_u64(&self) -> Option<u64> {
        const TWO_POW_64: f64 = 18446744073709551616.0;
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v < TWO_POW_64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// A JSON parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for JsonError {}

/// Parses one complete JSON value (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Examples
///
/// ```
/// use iba_obs::json::{parse, JsonValue};
/// let v = parse("{\"a\":[1,2],\"b\":null}").unwrap();
/// assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
/// assert_eq!(v.get("b"), Some(&JsonValue::Null));
/// assert!(parse("{\"a\":}").is_err());
/// ```
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced pos past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str, so
                    // slicing at a char boundary is always possible.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_orders_fields() {
        let mut w = JsonObjWriter::new();
        w.field_str("s", "a\"b\\c\nd\u{1}");
        w.field_u64("u", 42);
        w.field_i64("i", -3);
        w.field_f64("f", 0.5);
        w.field_bool("t", true);
        w.field_null("z");
        let line = w.finish();
        assert_eq!(
            line,
            "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"u\":42,\"i\":-3,\
             \"f\":0.5,\"t\":true,\"z\":null}"
        );
    }

    #[test]
    fn writer_schema_field_comes_first() {
        let line = JsonObjWriter::with_schema().finish();
        assert_eq!(line, format!("{{\"schema\":{SCHEMA_VERSION}}}"));
    }

    #[test]
    fn writer_arrays_and_raw() {
        let mut w = JsonObjWriter::new();
        w.field_u64_array("a", &[1, 2, 3]);
        w.field_raw("o", "{\"x\":1}");
        w.field_raw_array("r", &["1".into(), "\"two\"".into()]);
        assert_eq!(
            w.finish(),
            "{\"a\":[1,2,3],\"o\":{\"x\":1},\"r\":[1,\"two\"]}"
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        let mut w = JsonObjWriter::new();
        w.field_f64("nan", f64::NAN);
        w.field_f64_fixed("inf", f64::INFINITY, 3);
        assert_eq!(w.finish(), "{\"nan\":null,\"inf\":null}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonObjWriter::with_schema();
        w.field_str("name", "weird \"\\\n\t chars");
        w.field_u64("n", u64::from(u32::MAX));
        w.field_f64("x", -1.25e-3);
        w.field_u64_array("xs", &[0, 7]);
        let line = w.finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(
            v.get("name").unwrap().as_str(),
            Some("weird \"\\\n\t chars")
        );
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::from(u32::MAX)));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-1.25e-3));
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(
            xs.iter().map(|x| x.as_u64().unwrap()).collect::<Vec<_>>(),
            [0, 7]
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01e",
            "nul",
            "{\"a\":1} extra",
            "\"bad \\q escape\"",
            "\"\\ud800\"", // lone high surrogate
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn as_u64_is_exclusive_at_two_pow_64() {
        // Largest f64 strictly below 2^64: representable and in range.
        let below = parse("18446744073709549568").unwrap(); // 2^64 - 2048
        assert_eq!(below.as_u64(), Some(18_446_744_073_709_549_568));
        // 2^64 itself parses to exactly u64::MAX as f64 (which rounds up
        // to 2^64): must be rejected, not saturated to u64::MAX.
        let at = parse("18446744073709551616").unwrap(); // 2^64
        assert_eq!(at.as_u64(), None);
        // First representable f64 above 2^64: also rejected.
        let above = parse("18446744073709555712").unwrap(); // 2^64 + 4096
        assert_eq!(above.as_u64(), None);
        // Sanity either side of the boundary class.
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn parse_accepts_standard_forms() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" [ ] ").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(parse("-0.5e2").unwrap(), JsonValue::Number(-50.0));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("\u{1F600}".into())
        );
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn content_hash_is_order_sensitive_and_stable() {
        let pairs = |v: &[(&str, &str)]| -> Vec<(String, String)> {
            v.iter()
                .map(|(k, val)| (k.to_string(), val.to_string()))
                .collect()
        };
        let a = content_hash(&pairs(&[("n", "1024"), ("c", "2")]));
        let b = content_hash(&pairs(&[("n", "1024"), ("c", "2")]));
        let c = content_hash(&pairs(&[("c", "2"), ("n", "1024")]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(
            a.starts_with("fnv1a:") && a.len() == "fnv1a:".len() + 16,
            "{a}"
        );
    }

    #[test]
    fn provenance_round_trips_through_json() {
        let prov = Provenance {
            schema_version: SCHEMA_VERSION,
            git_rev: "0123abcd".into(),
            git_dirty: true,
            host: "bench-box".into(),
            cores: 8,
            kernel: Some("arena_parallel".into()),
            threads: Some(4),
        };
        let line = prov.to_json_object();
        let back = Provenance::from_value(&parse(&line).unwrap()).unwrap();
        assert_eq!(back, prov);
        // The optional kernel fields really are optional.
        let bare = Provenance {
            kernel: None,
            threads: None,
            ..prov
        };
        let back = Provenance::from_value(&parse(&bare.to_json_object()).unwrap()).unwrap();
        assert_eq!(back, bare);
        assert!(Provenance::from_value(&parse("{}").unwrap()).is_none());
    }

    #[test]
    fn provenance_collect_never_fails() {
        let prov = Provenance::collect();
        assert!(!prov.git_rev.is_empty());
        assert!(!prov.host.is_empty());
        assert!(prov.cores >= 1);
        assert_eq!(prov.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn quoted_helper() {
        assert_eq!(quoted("a\"b"), "\"a\\\"b\"");
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
    }
}
