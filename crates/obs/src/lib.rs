//! Unified telemetry for the CAPPED(c, λ) reproduction.
//!
//! This crate is the observability substrate every other workspace crate
//! records into. It is **std-only** and sits at the bottom of the
//! dependency stack (it depends on nothing, so `iba-sim`, `iba-core` and
//! `iba-serve` can all probe through it without cycles). Four pieces:
//!
//! - [`registry`] — named atomic counters, gauges and fixed-bucket
//!   histograms behind a process-wide on/off switch
//!   ([`set_enabled`]/[`enabled`]). **The disabled path of every probe is
//!   a single relaxed atomic load**, so probes live inside the hot round
//!   kernel without measurable cost when telemetry is off (the
//!   `obs_overhead` bench in `iba-bench` pins this at n = 10⁶).
//! - [`expo`] — Prometheus-style text exposition of a registry snapshot,
//!   plus a strict parser for it.
//! - [`json`] — the workspace's single hand-rolled JSON writer/parser.
//!   Every JSONL producer (ServeSnapshot, sweep outputs, the telemetry
//!   [`sink`], flight-recorder post-mortems) renders through it and stamps
//!   a `schema` version field.
//! - [`flight`] — the flight recorder: a fixed-size ring of recent
//!   round-level events that dumps a JSON post-mortem (events + registry
//!   snapshot) on panic, invariant violation, or fault trigger.
//!
//! # Example
//!
//! ```
//! use iba_obs::{global, set_enabled, PhaseTimer};
//!
//! set_enabled(true);
//! let rounds = iba_obs::global().counter("doc_rounds_total");
//! let latency = global().histogram("doc_round_nanos");
//!
//! let timer = PhaseTimer::start();
//! rounds.inc(); // one relaxed fetch_add
//! timer.observe(&latency);
//!
//! let text = iba_obs::expo::render(&global().snapshot());
//! assert!(text.contains("doc_rounds_total 1"));
//! set_enabled(false);
//! rounds.inc(); // single relaxed load, no write
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expo;
pub mod flight;
pub mod json;
pub mod registry;
pub mod sink;

pub use registry::{
    enabled, global, init_from_env, set_enabled, Counter, Gauge, Histogram, HistogramSnapshot,
    PhaseTimer, Registry, RegistrySnapshot,
};
