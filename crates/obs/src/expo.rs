//! Prometheus-style text exposition of a [`Registry`] snapshot, plus a
//! strict parser for it (used by the golden tests and the CI smoke check,
//! and handy for scraping a dumped exposition back into numbers).
//!
//! The format follows the Prometheus text exposition conventions:
//! `# TYPE` comment per metric family, `name value` samples, histograms
//! expanded into cumulative `_bucket{le="..."}` samples plus `_sum` and
//! `_count`. Only the subset the registry produces is supported — no
//! arbitrary labels, timestamps or `# HELP` lines.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::json::Provenance;
use crate::registry::{bucket_bound, Registry, RegistrySnapshot, HISTOGRAM_BUCKETS};

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Output is deterministic: families appear counters-first, then gauges,
/// then histograms, each name-sorted.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in hist.buckets.iter().enumerate() {
            cumulative += count;
            // Collapse empty interior buckets: emit a bucket line only
            // when it holds observations or is the +Inf terminator.
            // Cumulative counts keep the output well-formed regardless.
            if count == 0 && i != HISTOGRAM_BUCKETS - 1 {
                continue;
            }
            let le = if i == HISTOGRAM_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                bucket_bound(i).to_string()
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Renders the global registry's current state (convenience for binaries).
pub fn render_registry(registry: &Registry) -> String {
    render(&registry.snapshot())
}

/// Name of the run-info metric carrying provenance labels.
pub const RUN_INFO_METRIC: &str = "iba_run_info";

/// Renders the snapshot plus an `iba_run_info` sample carrying the run's
/// provenance as labels (`git_rev`, `dirty`, `host`, `cores`, and — when
/// present — `kernel` and `threads`), in the conventional `*_info`
/// always-1 gauge style. With `None` provenance this is exactly
/// [`render`].
pub fn render_with_provenance(snapshot: &RegistrySnapshot, prov: Option<&Provenance>) -> String {
    let mut out = render(snapshot);
    if let Some(prov) = prov {
        let mut labels: Vec<(String, String)> = vec![
            ("git_rev".into(), prov.git_rev.clone()),
            ("dirty".into(), prov.git_dirty.to_string()),
            ("host".into(), prov.host.clone()),
            ("cores".into(), prov.cores.to_string()),
        ];
        if let Some(kernel) = &prov.kernel {
            labels.push(("kernel".into(), kernel.clone()));
        }
        if let Some(threads) = prov.threads {
            labels.push(("threads".into(), threads.to_string()));
        }
        let _ = writeln!(out, "# TYPE {RUN_INFO_METRIC} gauge");
        let _ = writeln!(out, "{RUN_INFO_METRIC}{} 1", render_labels(&labels));
    }
    out
}

/// Renders a `{k="v",...}` label set (empty string for no labels), with
/// Prometheus-style escaping of backslashes, quotes and newlines in the
/// values.
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"");
        for ch in value.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// The exposition content type, as scrapers expect it.
pub const HTTP_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Wraps `body` in a minimal HTTP/1.1 response (`Connection: close`,
/// exact `Content-Length`) — the exposition-over-HTTP helper the serve
/// layer's `GET /metrics` endpoint writes onto a socket verbatim.
pub fn http_response(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Renders `registry`'s current state as a complete `200 OK` scrape
/// response, including the `iba_run_info` provenance sample when a run
/// context is installed (see [`crate::flight::set_run_context`]).
pub fn http_metrics_response(registry: &Registry) -> Vec<u8> {
    let body = render_with_provenance(&registry.snapshot(), crate::flight::run_context().as_ref());
    http_response(200, "OK", HTTP_CONTENT_TYPE, &body)
}

/// A `404 Not Found` response for non-`/metrics` paths.
pub fn http_not_found() -> Vec<u8> {
    http_response(
        404,
        "Not Found",
        "text/plain",
        "only GET /metrics is served\n",
    )
}

/// Splits an HTTP response into its body (everything past the blank line
/// separating the headers), for scrape clients that want to feed the body
/// back through [`parse`]. `None` if the header terminator is missing.
pub fn http_body(response: &str) -> Option<&str> {
    response.split_once("\r\n\r\n").map(|(_, body)| body)
}

/// One parsed sample line: metric name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The sample name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// The `le` label for histogram bucket samples (convenience view of
    /// `labels`).
    pub le: Option<String>,
    /// The full label set, in source order (histogram buckets carry `le`;
    /// the run-info sample carries the provenance labels).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The value exactly as it appeared in the source text. Kept because
    /// `u64` counters and histogram sums above 2⁵³ do not round-trip
    /// through `f64`; [`render_exposition`] echoes this token so
    /// re-rendering is byte-identical.
    pub raw: String,
}

/// A parsed exposition: declared metric families and their samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → kind (`counter` / `gauge` /
    /// `histogram`).
    pub families: BTreeMap<String, String>,
    /// All samples in input order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of the sample named `name` (first match).
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.le.is_none())
            .map(|s| s.value)
    }
}

/// An exposition parse error: line number plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpoError {
    /// 1-based line number where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ExpoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exposition parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ExpoError {}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses the subset of the text exposition format that [`render`] emits.
///
/// Strict by design — the CI smoke job uses this to assert that what the
/// service exposes is well-formed: unknown comment forms, malformed
/// labels, non-numeric values and samples without a family declaration
/// are all errors.
pub fn parse(input: &str) -> Result<Exposition, ExpoError> {
    let mut out = Exposition::default();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let err = |message: &str| ExpoError {
            line: lineno,
            message: message.to_string(),
        };
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| err("missing family name"))?;
            let kind = parts.next().ok_or_else(|| err("missing family kind"))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens after family kind"));
            }
            if !valid_name(name) {
                return Err(err("invalid family name"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(err("unknown family kind"));
            }
            out.families.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            return Err(err("unsupported comment (only '# TYPE' is emitted)"));
        }
        // Sample: name[{le="bound"}] value
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample line needs 'name value'"))?;
        let value: f64 = match value_part {
            "+Inf" => f64::INFINITY,
            v => v.parse().map_err(|_| err("non-numeric sample value"))?,
        };
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                (name.to_string(), parse_labels(labels).map_err(&err)?)
            }
        };
        let le = labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.clone());
        if !valid_name(&name) {
            return Err(err("invalid sample name"));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| out.families.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(&name);
        if !out.families.contains_key(family) {
            return Err(err("sample without a preceding # TYPE declaration"));
        }
        out.samples.push(Sample {
            name,
            le,
            labels,
            value,
            raw: value_part.to_string(),
        });
    }
    Ok(out)
}

/// Parses the inside of a `{...}` label set: `key="value"` pairs separated
/// by commas, with `\\`, `\"` and `\n` escapes in values. Strict: anything
/// else is an error.
fn parse_labels(input: &str) -> Result<Vec<(String, String)>, &'static str> {
    let mut labels = Vec::new();
    let mut chars = input.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if !valid_name(&key) {
            return Err("invalid label name");
        }
        if chars.next() != Some('"') {
            return Err("label value must be quoted");
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err("invalid escape in label value"),
                },
                c => value.push(c),
            }
        }
        if !closed {
            return Err("unterminated label value");
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(_) => return Err("expected ',' between labels"),
        }
    }
}

/// Re-renders a parsed exposition to text. On anything [`parse`] accepted
/// this reproduces the input byte-for-byte (the round-trip the golden
/// tests assert): samples replay in source order, each family's `# TYPE`
/// line is emitted before its first sample, and integral values print
/// without a decimal point exactly as the original renderer wrote them.
pub fn render_exposition(expo: &Exposition) -> String {
    let mut out = String::new();
    let mut declared: Vec<&str> = Vec::new();
    for sample in &expo.samples {
        let family = sample
            .name
            .strip_suffix("_bucket")
            .or_else(|| sample.name.strip_suffix("_sum"))
            .or_else(|| sample.name.strip_suffix("_count"))
            .filter(|f| expo.families.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(&sample.name);
        if !declared.contains(&family) {
            declared.push(family);
            if let Some(kind) = expo.families.get(family) {
                let _ = writeln!(out, "# TYPE {family} {kind}");
            }
        }
        let _ = writeln!(
            out,
            "{}{} {}",
            sample.name,
            render_labels(&sample.labels),
            sample.raw
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{set_enabled, Registry};
    use std::sync::Mutex;

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    /// The exposition golden test: exact expected text for a small
    /// registry.
    #[test]
    fn golden_exposition() {
        with_telemetry(|| {
            let r = Registry::new();
            r.counter("iba_balls_total").add(12);
            r.gauge("iba_pool_size").set(7);
            let h = r.histogram("iba_round_nanos");
            h.record(0);
            h.record(1);
            h.record(5);
            h.record(5);
            let text = render(&r.snapshot());
            let expected = "\
# TYPE iba_balls_total counter
iba_balls_total 12
# TYPE iba_pool_size gauge
iba_pool_size 7
# TYPE iba_round_nanos histogram
iba_round_nanos_bucket{le=\"0\"} 1
iba_round_nanos_bucket{le=\"1\"} 2
iba_round_nanos_bucket{le=\"7\"} 4
iba_round_nanos_bucket{le=\"+Inf\"} 4
iba_round_nanos_sum 11
iba_round_nanos_count 4
";
            assert_eq!(text, expected);
        });
    }

    #[test]
    fn render_parses_back() {
        with_telemetry(|| {
            let r = Registry::new();
            r.counter("a_total").add(3);
            r.gauge("depth").set(9);
            let h = r.histogram("lat_nanos");
            for v in [1u64, 2, 3, 1_000_000] {
                h.record(v);
            }
            let text = render(&r.snapshot());
            let expo = parse(&text).unwrap();
            assert_eq!(expo.families.get("a_total").unwrap(), "counter");
            assert_eq!(expo.families.get("depth").unwrap(), "gauge");
            assert_eq!(expo.families.get("lat_nanos").unwrap(), "histogram");
            assert_eq!(expo.value("a_total"), Some(3.0));
            assert_eq!(expo.value("depth"), Some(9.0));
            assert_eq!(expo.value("lat_nanos_count"), Some(4.0));
            assert_eq!(expo.value("lat_nanos_sum"), Some(1_000_006.0));
            // The +Inf bucket carries the total count.
            let inf = expo
                .samples
                .iter()
                .find(|s| s.le.as_deref() == Some("+Inf"))
                .unwrap();
            assert_eq!(inf.value, 4.0);
        });
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert_eq!(render_registry(&r), "");
        assert_eq!(parse("").unwrap(), Exposition::default());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "# HELP x something",
            "# TYPE x widget",
            "# TYPE 9bad counter",
            "x 1",                                       // no family
            "# TYPE x counter\nx",                       // no value
            "# TYPE x counter\nx one",                   // non-numeric
            "# TYPE x histogram\nx_bucket{le=\"1\" 2",   // unterminated labels
            "# TYPE x histogram\nx_bucket{le=1} 2",      // unquoted label value
            "# TYPE x histogram\nx_bucket{9le=\"1\"} 2", // invalid label name
            "# TYPE x gauge\nx{a=\"1\"b=\"2\"} 2",       // missing comma
            "# TYPE x gauge\nx{a=\"\\q\"} 2",            // invalid escape
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn http_response_wraps_exposition_and_parses_back() {
        with_telemetry(|| {
            let r = Registry::new();
            r.gauge("iba_pool_size").set(11);
            let raw = http_metrics_response(&r);
            let text = String::from_utf8(raw).unwrap();
            assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
            assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
            assert!(text.contains("Connection: close\r\n"));
            let body = http_body(&text).unwrap();
            let declared: usize = text
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            assert_eq!(declared, body.len());
            let expo = parse(body).unwrap();
            assert_eq!(expo.value("iba_pool_size"), Some(11.0));
        });
    }

    #[test]
    fn http_not_found_is_well_formed() {
        let text = String::from_utf8(http_not_found()).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(http_body(&text).is_some());
        assert_eq!(http_body("no header terminator"), None);
    }

    #[test]
    fn histogram_suffixes_resolve_to_family() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 1\n";
        let expo = parse(text).unwrap();
        assert_eq!(expo.samples.len(), 3);
        assert_eq!(expo.value("h_sum"), Some(5.0));
    }
}
