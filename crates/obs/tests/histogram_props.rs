//! Property tests for the fixed-bucket [`Histogram`]: bucketization must
//! match a naive per-value reference, merging snapshots must equal
//! recording the concatenation, quantiles must bracket the true order
//! statistic within the documented 2x bucket error, and concurrent
//! recording from multiple threads must lose nothing.

use std::sync::Arc;
use std::thread;

use iba_obs::registry::{bucket_bound, HISTOGRAM_BUCKETS};
use iba_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Reference bucket index: 0 for 0, otherwise the bit width of the value,
/// capped at the final (+Inf) bucket.
fn naive_bucket(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Records `values` into a fresh histogram and snapshots it. Recording is
/// globally gated, so the flag is forced on; no test here turns it off.
fn recorded(values: &[u64]) -> HistogramSnapshot {
    iba_obs::set_enabled(true);
    let hist = Histogram::default();
    for &v in values {
        hist.record(v);
    }
    hist.snapshot()
}

proptest! {
    #[test]
    fn record_matches_naive_bucketization(
        values in prop::collection::vec(any::<u64>(), 0..200)
    ) {
        let snap = recorded(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        // The sum accumulates via atomic fetch_add, which wraps.
        let expected_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(snap.sum, expected_sum);
        let mut expected = [0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            expected[naive_bucket(v)] += 1;
        }
        prop_assert_eq!(snap.buckets, expected);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        // Bounded values so neither the recorded (wrapping) nor the merged
        // (saturating) sum can overflow and make the two paths diverge.
        a in prop::collection::vec(0u64..(1 << 40), 0..150),
        b in prop::collection::vec(0u64..(1 << 40), 0..150),
    ) {
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, recorded(&concat));
    }

    #[test]
    fn quantile_brackets_the_true_order_statistic(
        // Below 2^63 every value lands in a bounded bucket, so the
        // documented "upper bound within 2x" contract applies.
        values in prop::collection::vec(0u64..(1 << 63), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let snap = recorded(&values);
        let bound = snap.quantile(q).expect("non-empty histogram");
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let truth = sorted[rank - 1];
        prop_assert!(bound >= truth, "bound {} < true quantile {}", bound, truth);
        if truth >= 1 {
            prop_assert!(
                bound < 2 * truth,
                "bound {} not within 2x of true quantile {}",
                bound,
                truth
            );
        } else {
            // A true quantile of 0 must resolve to the zero bucket exactly.
            prop_assert_eq!(bound, 0);
        }
        let max = snap.max_bound().expect("non-empty histogram");
        prop_assert_eq!(max, bucket_bound(naive_bucket(*sorted.last().unwrap())));
    }
}

#[test]
fn concurrent_recording_loses_nothing() {
    iba_obs::set_enabled(true);
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let hist = Arc::new(Histogram::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                // Thread t records the value 2^t, so every thread owns a
                // distinct bucket and the per-bucket totals are checkable.
                for _ in 0..PER_THREAD {
                    hist.record(1 << t);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread panicked");
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.sum, PER_THREAD * (1 + 2 + 4 + 8));
    for t in 0..THREADS {
        assert_eq!(snap.buckets[naive_bucket(1 << t)], PER_THREAD);
    }
}
