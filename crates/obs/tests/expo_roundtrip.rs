//! Exposition round-trip on a fully-populated live registry: what the
//! scrape plane renders must survive `render → strict parse → re-render`
//! **byte-identically**, including histograms with observations in every
//! one of the 65 power-of-two buckets and the `iba_run_info` provenance
//! labels. This is the guarantee that lets the replication tooling scrape
//! a running service, archive the exposition, and re-emit it later with
//! zero loss.

use iba_obs::expo::{parse, render_exposition, render_with_provenance, RUN_INFO_METRIC};
use iba_obs::json::{Provenance, SCHEMA_VERSION};
use iba_obs::registry::HISTOGRAM_BUCKETS;
use iba_obs::{set_enabled, Registry};

fn fully_populated_registry() -> Registry {
    let r = Registry::new();
    r.counter("iba_balls_total").add(12_345);
    r.counter("iba_rounds_total").add(1);
    // A counter past 2^53: exercises the raw-token fidelity path (the
    // value does not round-trip through f64).
    r.counter("iba_huge_total").add((1 << 60) + 1);
    r.gauge("iba_pool_size").set(987);
    r.gauge("iba_backlog").set(3);
    let h = r.histogram("iba_round_nanos");
    // One observation per bucket: 0 lands in bucket 0, and 2^k lands in
    // bucket k+1 for k = 0..=63, so all 65 buckets hold a count and the
    // sum exceeds 2^63 (another raw-fidelity case).
    h.record(0);
    for k in 0..64u32 {
        h.record(1u64 << k);
    }
    let sparse = r.histogram("iba_wait_rounds");
    sparse.record(1);
    sparse.record(1_000_000);
    r
}

#[test]
fn full_registry_round_trips_byte_identically_with_provenance() {
    set_enabled(true);
    let registry = fully_populated_registry();
    let prov = Provenance {
        schema_version: SCHEMA_VERSION,
        git_rev: "0123456789abcdef0123456789abcdef01234567".into(),
        git_dirty: false,
        host: "ci-runner-\"quoted\"".into(),
        cores: 4,
        kernel: Some("arena_simd".into()),
        threads: Some(2),
    };
    let rendered = render_with_provenance(&registry.snapshot(), Some(&prov));
    set_enabled(false);

    // Every bucket of the fully-populated histogram is present.
    let bucket_lines = rendered
        .lines()
        .filter(|l| l.starts_with("iba_round_nanos_bucket"))
        .count();
    assert_eq!(bucket_lines, HISTOGRAM_BUCKETS);

    let expo = parse(&rendered).expect("strict parse of the live exposition");
    let rerendered = render_exposition(&expo);
    assert_eq!(rerendered, rendered, "re-render must be byte-identical");

    // The provenance labels survived the trip, unescaped.
    let info = expo
        .samples
        .iter()
        .find(|s| s.name == RUN_INFO_METRIC)
        .expect("run-info sample present");
    let label = |key: &str| {
        info.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    assert_eq!(
        label("git_rev"),
        Some("0123456789abcdef0123456789abcdef01234567")
    );
    assert_eq!(label("dirty"), Some("false"));
    assert_eq!(label("host"), Some("ci-runner-\"quoted\""));
    assert_eq!(label("cores"), Some("4"));
    assert_eq!(label("kernel"), Some("arena_simd"));
    assert_eq!(label("threads"), Some("2"));
    assert_eq!(info.value, 1.0);

    // Parse → re-render is a fixpoint: one more trip changes nothing.
    let again = parse(&rerendered).expect("re-rendered text still parses strictly");
    assert_eq!(render_exposition(&again), rerendered);
}

#[test]
fn round_trip_without_provenance_matches_plain_render() {
    set_enabled(true);
    let registry = fully_populated_registry();
    let plain = iba_obs::expo::render(&registry.snapshot());
    let with_none = render_with_provenance(&registry.snapshot(), None);
    set_enabled(false);
    assert_eq!(plain, with_none);
    let expo = parse(&plain).unwrap();
    assert_eq!(render_exposition(&expo), plain);
    assert!(!plain.contains(RUN_INFO_METRIC));
}
