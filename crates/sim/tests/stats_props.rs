//! Property-based tests for the statistics substrate: the streaming and
//! bucketed implementations must agree with naive reference computations
//! on arbitrary inputs.

use proptest::prelude::*;

use iba_sim::stats::quantile::{quantile, quantile_sorted};
use iba_sim::stats::{Histogram, Summary};

fn finite_f64() -> impl Strategy<Value = f64> {
    // Bounded magnitude keeps naive reference sums numerically comparable.
    (-1e6f64..1e6).prop_map(|x| (x * 1e6).round() / 1e6)
}

proptest! {
    #[test]
    fn summary_matches_naive_two_pass(data in prop::collection::vec(finite_f64(), 1..200)) {
        let s: Summary = data.iter().copied().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let scale = data.iter().map(|x| x.abs()).fold(1.0, f64::max);
        prop_assert!((s.mean() - mean).abs() <= 1e-9 * scale.max(1.0));
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), Some(min));
        prop_assert_eq!(s.max(), Some(max));
        if data.len() >= 2 {
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.sample_variance() - var).abs() <= 1e-6 * var.abs().max(1.0));
        }
    }

    #[test]
    fn summary_merge_is_order_independent(
        a in prop::collection::vec(finite_f64(), 0..100),
        b in prop::collection::vec(finite_f64(), 0..100),
    ) {
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);

        let all: Summary = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(left.count(), all.count());
        if all.count() > 0 {
            prop_assert!((left.mean() - all.mean()).abs() < 1e-6 * all.mean().abs().max(1.0));
            prop_assert_eq!(left.min(), all.min());
            prop_assert_eq!(left.max(), all.max());
        }
    }

    #[test]
    fn histogram_matches_naive_counts(values in prop::collection::vec(0u64..500, 1..300)) {
        let h: Histogram = values.iter().copied().collect();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), values.iter().copied().min());
        prop_assert_eq!(h.max(), values.iter().copied().max());
        let naive_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - naive_mean).abs() < 1e-9);
        // Spot-check one bucket.
        let target = values[0];
        let expected = values.iter().filter(|&&v| v == target).count() as u64;
        prop_assert_eq!(h.count_at(target), expected);
    }

    #[test]
    fn histogram_quantile_is_order_statistic(
        values in prop::collection::vec(0u64..100, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h: Histogram = values.iter().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        prop_assert_eq!(h.quantile(q), Some(sorted[rank.min(sorted.len() - 1)]));
    }

    #[test]
    fn histogram_merge_equals_concatenation(
        a in prop::collection::vec(0u64..64, 0..100),
        b in prop::collection::vec(0u64..64, 0..100),
    ) {
        let mut left: Histogram = a.iter().copied().collect();
        let right: Histogram = b.iter().copied().collect();
        left.merge(&right);
        let all: Histogram = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(left, all);
    }

    #[test]
    fn quantile_brackets_data(data in prop::collection::vec(finite_f64(), 1..100), q in 0.0f64..=1.0) {
        let v = quantile(&data, q).unwrap();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(data in prop::collection::vec(finite_f64(), 2..100)) {
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=10 {
            let q = step as f64 / 10.0;
            let v = quantile_sorted(&sorted, q);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn rng_uniform_below_stays_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = iba_sim::SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.uniform_below(bound) < bound);
        }
    }

    #[test]
    fn rng_is_reproducible(seed in any::<u64>()) {
        let mut a = iba_sim::SimRng::seed_from(seed);
        let mut b = iba_sim::SimRng::seed_from(seed);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
