//! Statistical test battery for the simulation RNG.
//!
//! The allocation results are distribution-level claims about uniform bin
//! choices, so the generator's uniformity and independence matter. These
//! tests run classic diagnostics — chi-square goodness of fit, runs test,
//! serial correlation, bit balance — at fixed seeds with comfortable
//! acceptance bands (they are regression tripwires for the generator
//! implementation, not research-grade randomness certification).

use iba_sim::rng::SimRng;

#[test]
fn chi_square_uniform_bins() {
    // 1e6 draws over 64 bins: chi-square with 63 dof has mean 63 and
    // sd ≈ 11.2; accept within ±6 sd.
    let mut rng = SimRng::seed_from(101);
    let bins = 64usize;
    let draws = 1_000_000u64;
    let mut counts = vec![0u64; bins];
    for _ in 0..draws {
        counts[rng.uniform_bin(bins)] += 1;
    }
    let expected = draws as f64 / bins as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = (bins - 1) as f64;
    let sd = (2.0 * dof).sqrt();
    assert!(
        (chi2 - dof).abs() < 6.0 * sd,
        "chi-square {chi2:.1} too far from dof {dof}"
    );
}

#[test]
fn chi_square_non_power_of_two_bins() {
    // Lemire rejection must stay unbiased for awkward bounds like 1000.
    let mut rng = SimRng::seed_from(102);
    let bins = 1000usize;
    let draws = 2_000_000u64;
    let mut counts = vec![0u64; bins];
    for _ in 0..draws {
        counts[rng.uniform_bin(bins)] += 1;
    }
    let expected = draws as f64 / bins as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = (bins - 1) as f64;
    let sd = (2.0 * dof).sqrt();
    assert!(
        (chi2 - dof).abs() < 6.0 * sd,
        "chi-square {chi2:.1} too far from dof {dof}"
    );
}

#[test]
fn runs_test_on_unit_doubles() {
    // Number of ascending/descending runs in an i.i.d. sequence of length
    // N is ≈ N·2/3 with sd ≈ sqrt(16N/90).
    let mut rng = SimRng::seed_from(103);
    let n = 500_000usize;
    let seq: Vec<f64> = (0..n).map(|_| rng.unit_f64()).collect();
    let mut runs = 1u64;
    for w in seq.windows(3) {
        let up1 = w[1] > w[0];
        let up2 = w[2] > w[1];
        if up1 != up2 {
            runs += 1;
        }
    }
    let expected = (2.0 * n as f64 - 1.0) / 3.0;
    let sd = ((16.0 * n as f64 - 29.0) / 90.0).sqrt();
    assert!(
        (runs as f64 - expected).abs() < 6.0 * sd,
        "runs {runs} vs expected {expected:.0} (sd {sd:.1})"
    );
}

#[test]
fn serial_correlation_is_negligible() {
    let mut rng = SimRng::seed_from(104);
    let n = 500_000usize;
    let seq: Vec<f64> = (0..n).map(|_| rng.unit_f64()).collect();
    for lag in [1usize, 2, 7] {
        let r = iba_sim::stats::autocorr::autocorrelation(&seq, lag).unwrap();
        assert!(r.abs() < 0.01, "lag {lag}: correlation {r}");
    }
}

#[test]
fn bit_balance_of_raw_outputs() {
    // Each of the 64 output bits must be set about half the time.
    let mut rng = SimRng::seed_from(105);
    let draws = 200_000u64;
    let mut ones = [0u64; 64];
    for _ in 0..draws {
        let x = rng.next_u64();
        for (bit, slot) in ones.iter_mut().enumerate() {
            *slot += (x >> bit) & 1;
        }
    }
    let expected = draws as f64 / 2.0;
    let sd = (draws as f64 * 0.25).sqrt();
    for (bit, &count) in ones.iter().enumerate() {
        assert!(
            (count as f64 - expected).abs() < 6.0 * sd,
            "bit {bit}: {count} ones out of {draws}"
        );
    }
}

#[test]
fn split_streams_are_uncorrelated() {
    let mut parent = SimRng::seed_from(106);
    let mut a = parent.split();
    let mut b = parent.split();
    let n = 200_000usize;
    let xa: Vec<f64> = (0..n).map(|_| a.unit_f64()).collect();
    let xb: Vec<f64> = (0..n).map(|_| b.unit_f64()).collect();
    let mean_a: f64 = xa.iter().sum::<f64>() / n as f64;
    let mean_b: f64 = xb.iter().sum::<f64>() / n as f64;
    let cov: f64 = xa
        .iter()
        .zip(&xb)
        .map(|(&u, &v)| (u - mean_a) * (v - mean_b))
        .sum::<f64>()
        / n as f64;
    let corr = cov / (1.0 / 12.0); // Var(U[0,1)) = 1/12
    assert!(corr.abs() < 0.01, "cross-stream correlation {corr}");
}

#[test]
fn bernoulli_matches_binomial_variance() {
    let mut rng = SimRng::seed_from(107);
    let trials = 400_000u64;
    let p = 0.37;
    let hits = (0..trials).filter(|_| rng.bernoulli(p)).count() as f64;
    let expected = trials as f64 * p;
    let sd = (trials as f64 * p * (1.0 - p)).sqrt();
    assert!(
        (hits - expected).abs() < 6.0 * sd,
        "{hits} hits vs expected {expected:.0}"
    );
}
