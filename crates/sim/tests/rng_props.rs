//! Property-based tests of the bulk RNG path: for every bin count, seed,
//! and draw count, [`SimRng::fill_uniform_bins`] must be
//! **consumption-identical** to calling [`SimRng::uniform_bin`] once per
//! slot — same values, same number of raw 64-bit draws (including Lemire
//! rejection re-draws on non-power-of-two bounds), same generator state
//! afterwards. This is the property the flat-arena round kernel leans on
//! to pre-draw a whole round's choices without perturbing any seeded
//! trajectory.

use proptest::prelude::*;

use iba_sim::SimRng;

/// Bin counts biased toward the Lemire-rejection cases: non-powers of two
/// both small (high rejection probability) and near the top of the `u32`
/// index range, plus exact powers of two for the fast path.
fn bin_count() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=70,                            // dense small range, both parities
        (0u32..=20).prop_map(|k| 1usize << k),  // power-of-two fast path
        (1usize..=1 << 20).prop_map(|n| n | 1), // odd: always rejects sometimes
        (1usize << 31) - 64..=(1 << 31) + 64,   // straddling 2^31
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bulk and scalar sampling agree value-for-value and leave two
    /// identically seeded generators in the same state.
    #[test]
    fn bulk_matches_per_call_draws(
        n in bin_count(),
        seed in any::<u64>(),
        len in 0usize..500,
    ) {
        let mut bulk = SimRng::seed_from(seed);
        let mut scalar = SimRng::seed_from(seed);
        let mut out = vec![0u32; len];
        bulk.fill_uniform_bins(n, &mut out);
        for (i, &v) in out.iter().enumerate() {
            prop_assert!((v as usize) < n, "n={n}: draw {i} out of range");
            prop_assert_eq!(v as usize, scalar.uniform_bin(n), "n={} draw {}", n, i);
        }
        prop_assert_eq!(bulk.state(), scalar.state(), "consumption diverged for n={}", n);
    }

    /// Interleaving bulk and scalar sampling on one generator matches a
    /// pure scalar stream: the bulk path can be dropped into any seeded
    /// run mid-stream without shifting later draws.
    #[test]
    fn bulk_interleaves_transparently(
        n in bin_count(),
        seed in any::<u64>(),
        chunks in prop::collection::vec(0usize..60, 1..8),
    ) {
        let mut mixed = SimRng::seed_from(seed);
        let mut scalar = SimRng::seed_from(seed);
        for (c, chunk) in chunks.iter().enumerate() {
            let mut out = vec![0u32; *chunk];
            mixed.fill_uniform_bins(n, &mut out);
            for (i, &v) in out.iter().enumerate() {
                prop_assert_eq!(
                    v as usize,
                    scalar.uniform_bin(n),
                    "n={} chunk {} draw {}", n, c, i
                );
            }
            // One scalar draw on both generators between bulk chunks.
            prop_assert_eq!(mixed.uniform_bin(n), scalar.uniform_bin(n));
        }
        prop_assert_eq!(mixed.state(), scalar.state());
    }
}
