//! The round-driving simulation engine and metric observers.
//!
//! [`Simulation`] owns a process and its random source and advances them one
//! synchronous round at a time. Metric collection is decoupled through the
//! [`Observer`] trait: the engine pushes every [`RoundReport`] to whatever
//! observers the caller attached for the duration of a run. Built-in
//! observers cover the measurements needed for the paper's figures
//! (pool-size series, waiting times, failed deletion attempts).

use crate::process::{AllocationProcess, RoundReport};
use crate::rng::SimRng;
use crate::stats::{Histogram, Summary, TimeSeries};

/// Receives every round's report during an observed run.
pub trait Observer {
    /// Called once per completed round.
    fn on_round(&mut self, report: &RoundReport);
}

impl<F: FnMut(&RoundReport)> Observer for F {
    fn on_round(&mut self, report: &RoundReport) {
        self(report)
    }
}

/// A simulation: a process plus its deterministic random source.
///
/// # Examples
///
/// See the crate-level documentation for a full example with a custom
/// process.
#[derive(Debug)]
pub struct Simulation<P> {
    process: P,
    rng: SimRng,
}

impl<P: AllocationProcess> Simulation<P> {
    /// Creates a simulation from a process and an RNG.
    pub fn new(process: P, rng: SimRng) -> Self {
        Simulation { process, rng }
    }

    /// Read access to the process.
    pub fn process(&self) -> &P {
        &self.process
    }

    /// Mutable access to the process (e.g. for warm-starting the pool).
    pub fn process_mut(&mut self) -> &mut P {
        &mut self.process
    }

    /// Consumes the simulation, returning the process.
    pub fn into_process(self) -> P {
        self.process
    }

    /// Read access to the random source (e.g. for checkpointing).
    pub fn rng(&self) -> &SimRng {
        &self.rng
    }

    /// Executes one round and returns its report.
    pub fn step(&mut self) -> RoundReport {
        self.process.step(&mut self.rng)
    }

    /// Runs `rounds` rounds, discarding reports.
    ///
    /// One [`RoundReport`] is reused across all rounds (via
    /// [`AllocationProcess::step_into`]), so processes with a reusing
    /// override allocate nothing per round in steady state.
    pub fn run_rounds(&mut self, rounds: u64) {
        let mut report = RoundReport::default();
        for _ in 0..rounds {
            self.process.step_into(&mut self.rng, &mut report);
        }
    }

    /// Runs `rounds` rounds, feeding every report to `observer`. The report
    /// buffer is reused across rounds, like [`run_rounds`](Self::run_rounds).
    pub fn run_observed(&mut self, rounds: u64, observer: &mut dyn Observer) {
        let mut report = RoundReport::default();
        for _ in 0..rounds {
            self.process.step_into(&mut self.rng, &mut report);
            observer.on_round(&report);
        }
    }

    /// Runs until `stop` returns `true` for a report or `max_rounds` rounds
    /// have elapsed, feeding every report to `observer`. Returns the number
    /// of rounds executed.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        observer: &mut dyn Observer,
        mut stop: impl FnMut(&RoundReport) -> bool,
    ) -> u64 {
        let mut report = RoundReport::default();
        for i in 0..max_rounds {
            self.process.step_into(&mut self.rng, &mut report);
            observer.on_round(&report);
            if stop(&report) {
                return i + 1;
            }
        }
        max_rounds
    }

    /// Runs a *static* process (one with a termination condition) to
    /// completion, up to `max_rounds`. Returns the number of rounds used, or
    /// `None` if the process did not finish within the bound.
    pub fn run_to_completion(&mut self, max_rounds: u64) -> Option<u64> {
        let mut report = RoundReport::default();
        for i in 0..max_rounds {
            if self.process.is_finished() {
                return Some(i);
            }
            self.process.step_into(&mut self.rng, &mut report);
        }
        if self.process.is_finished() {
            Some(max_rounds)
        } else {
            None
        }
    }
}

/// Observer recording the pool-size series `m(t)`.
#[derive(Debug, Default)]
pub struct PoolSeries {
    series: TimeSeries,
}

impl PoolSeries {
    /// Creates an empty pool-size observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the observer, returning the series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

impl Observer for PoolSeries {
    fn on_round(&mut self, report: &RoundReport) {
        self.series.push(report.pool_size as f64);
    }
}

/// Observer aggregating the waiting times of all deleted balls, exactly as
/// Figure 5 reports them: the mean over every deletion in the window and the
/// maximum over the window.
#[derive(Debug, Default)]
pub struct WaitingTimes {
    histogram: Histogram,
}

impl WaitingTimes {
    /// Creates an empty waiting-time observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Histogram of all observed waiting times.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Mean waiting time over the window (0 if nothing was deleted).
    pub fn mean(&self) -> f64 {
        self.histogram.mean()
    }

    /// Maximum waiting time over the window, if any ball was deleted.
    pub fn max(&self) -> Option<u64> {
        self.histogram.max()
    }
}

impl Observer for WaitingTimes {
    fn on_round(&mut self, report: &RoundReport) {
        for &w in &report.waiting_times {
            self.histogram.record(w);
        }
    }
}

/// Observer summarizing scalar per-round quantities used by several
/// experiments: pool size, failed deletions, max load.
#[derive(Debug, Default)]
pub struct RoundStats {
    /// Summary of `pool_size` across observed rounds.
    pub pool: Summary,
    /// Summary of `failed_deletions` across observed rounds.
    pub failed_deletions: Summary,
    /// Summary of `max_load` across observed rounds.
    pub max_load: Summary,
    /// Summary of `deleted` (throughput) across observed rounds.
    pub deleted: Summary,
    /// Summary of `thrown` (allocation requests, i.e. random probes issued)
    /// across observed rounds.
    pub thrown: Summary,
    /// Summary of `generated` across observed rounds.
    pub generated: Summary,
}

impl RoundStats {
    /// Creates an empty per-round statistics observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average number of allocation probes a ball issues over its lifetime,
    /// `Σ thrown / Σ generated` (each pooled ball issues one probe per
    /// round it competes in). The paper (Sec. I-B) claims this is constant
    /// for constant λ. Returns `None` when no balls were generated.
    pub fn probes_per_ball(&self) -> Option<f64> {
        let generated = self.generated.mean() * self.generated.count() as f64;
        if generated == 0.0 {
            return None;
        }
        let thrown = self.thrown.mean() * self.thrown.count() as f64;
        Some(thrown / generated)
    }
}

impl Observer for RoundStats {
    fn on_round(&mut self, report: &RoundReport) {
        self.pool.push_u64(report.pool_size);
        self.failed_deletions.push_u64(report.failed_deletions);
        self.max_load.push_u64(report.max_load);
        self.deleted.push_u64(report.deleted);
        self.thrown.push_u64(report.thrown);
        self.generated.push_u64(report.generated);
    }
}

/// Fans one report out to several observers.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl std::fmt::Debug for MultiObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiObserver")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty multi-observer.
    pub fn new() -> Self {
        MultiObserver {
            observers: Vec::new(),
        }
    }

    /// Adds an observer; returns `self` for chaining.
    pub fn with(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observers.push(observer);
        self
    }
}

impl Observer for MultiObserver<'_> {
    fn on_round(&mut self, report: &RoundReport) {
        for obs in &mut self.observers {
            obs.on_round(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process producing a deterministic, known report stream.
    struct Scripted {
        round: u64,
    }

    impl AllocationProcess for Scripted {
        fn bins(&self) -> usize {
            4
        }
        fn round(&self) -> u64 {
            self.round
        }
        fn pool_size(&self) -> usize {
            (self.round * 2) as usize
        }
        fn step(&mut self, _rng: &mut SimRng) -> RoundReport {
            self.round += 1;
            RoundReport {
                round: self.round,
                pool_size: self.round * 2,
                failed_deletions: self.round % 2,
                max_load: 1,
                deleted: 3,
                waiting_times: vec![self.round, self.round + 1],
                ..RoundReport::default()
            }
        }
    }

    fn sim() -> Simulation<Scripted> {
        Simulation::new(Scripted { round: 0 }, SimRng::seed_from(0))
    }

    #[test]
    fn run_rounds_advances_process() {
        let mut s = sim();
        s.run_rounds(7);
        assert_eq!(s.process().round(), 7);
        assert_eq!(s.into_process().round, 7);
    }

    #[test]
    fn pool_series_records_every_round() {
        let mut s = sim();
        let mut obs = PoolSeries::new();
        s.run_observed(5, &mut obs);
        assert_eq!(obs.series().len(), 5);
        assert_eq!(obs.series().values(), &[2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(obs.into_series().len(), 5);
    }

    #[test]
    fn waiting_times_aggregates_all_deletions() {
        let mut s = sim();
        let mut obs = WaitingTimes::new();
        s.run_observed(3, &mut obs);
        // Waiting times: rounds 1..=3 produce {1,2},{2,3},{3,4}.
        assert_eq!(obs.histogram().count(), 6);
        assert_eq!(obs.max(), Some(4));
        assert!((obs.mean() - 15.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn round_stats_summarizes() {
        let mut s = sim();
        let mut obs = RoundStats::new();
        s.run_observed(4, &mut obs);
        assert_eq!(obs.pool.count(), 4);
        assert_eq!(obs.pool.max(), Some(8.0));
        assert_eq!(obs.deleted.mean(), 3.0);
        assert_eq!(obs.failed_deletions.min(), Some(0.0));
        assert_eq!(obs.max_load.mean(), 1.0);
        // Scripted rounds have thrown = generated = 0 -> no probe ratio.
        assert_eq!(obs.probes_per_ball(), None);
    }

    #[test]
    fn probes_per_ball_ratio() {
        let mut obs = RoundStats::new();
        // Two rounds: 10 generated / 15 thrown, 10 generated / 25 thrown.
        for (generated, thrown) in [(10u64, 15u64), (10, 25)] {
            obs.on_round(&RoundReport {
                generated,
                thrown,
                ..RoundReport::default()
            });
        }
        assert_eq!(obs.probes_per_ball(), Some(2.0)); // 40 / 20
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut s = sim();
        let mut noop = |_: &RoundReport| {};
        let ran = s.run_until(100, &mut noop, |r| r.pool_size >= 6);
        assert_eq!(ran, 3);
        assert_eq!(s.process().round(), 3);
    }

    #[test]
    fn run_until_respects_max_rounds() {
        let mut s = sim();
        let mut noop = |_: &RoundReport| {};
        let ran = s.run_until(5, &mut noop, |_| false);
        assert_eq!(ran, 5);
    }

    #[test]
    fn multi_observer_fans_out() {
        let mut s = sim();
        let mut pool = PoolSeries::new();
        let mut stats = RoundStats::new();
        let mut multi = MultiObserver::new().with(&mut pool).with(&mut stats);
        s.run_observed(3, &mut multi);
        assert_eq!(pool.series().len(), 3);
        assert_eq!(stats.pool.count(), 3);
    }

    #[test]
    fn closures_are_observers() {
        let mut s = sim();
        let mut seen = 0u64;
        let mut counter = |r: &RoundReport| seen += r.deleted;
        s.run_observed(2, &mut counter);
        assert_eq!(seen, 6);
    }

    #[test]
    fn run_to_completion_none_for_infinite_process() {
        let mut s = sim();
        assert_eq!(s.run_to_completion(10), None);
    }
}
