//! Error types shared by the simulation substrate.

use std::error::Error;
use std::fmt;

/// Error returned when a simulation or measurement configuration is invalid.
///
/// The variants mirror the paper's model constraints from Section II: `λn`
/// must be a non-negative integer, `0 ≤ λ ≤ 1 − 1/n`, capacities must be
/// positive, and measurement windows must be non-empty.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The number of bins `n` was zero.
    ZeroBins,
    /// The capacity `c` was zero (the process requires `c ∈ ℕ`, i.e. ≥ 1,
    /// or the explicit `Infinite` marker).
    ZeroCapacity,
    /// The injection rate was outside the analyzed range.
    InvalidRate {
        /// The offending rate.
        lambda: f64,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// `λn` is not an integer; the deterministic arrival model of Section II
    /// requires `λn ∈ ℕ`.
    NonIntegralArrivals {
        /// The offending rate.
        lambda: f64,
        /// The number of bins.
        bins: usize,
    },
    /// A measurement or burn-in window had length zero.
    EmptyWindow {
        /// Which window was empty.
        what: &'static str,
    },
    /// A parameter fell outside its documented domain.
    OutOfDomain {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the domain.
        domain: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBins => write!(f, "number of bins must be positive"),
            ConfigError::ZeroCapacity => {
                write!(f, "buffer capacity must be at least 1 (or explicitly infinite)")
            }
            ConfigError::InvalidRate { lambda, constraint } => {
                write!(f, "injection rate {lambda} violates constraint {constraint}")
            }
            ConfigError::NonIntegralArrivals { lambda, bins } => write!(
                f,
                "deterministic arrivals require an integral batch, but lambda*n = {} is not an integer",
                lambda * (*bins as f64)
            ),
            ConfigError::EmptyWindow { what } => {
                write!(f, "{what} window must contain at least one round")
            }
            ConfigError::OutOfDomain { name, domain } => {
                write!(f, "parameter {name} outside its domain {domain}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            ConfigError::ZeroBins.to_string(),
            ConfigError::ZeroCapacity.to_string(),
            ConfigError::InvalidRate {
                lambda: 1.5,
                constraint: "0 <= lambda <= 1 - 1/n",
            }
            .to_string(),
            ConfigError::NonIntegralArrivals {
                lambda: 0.3,
                bins: 10,
            }
            .to_string(),
            ConfigError::EmptyWindow {
                what: "measurement",
            }
            .to_string(),
            ConfigError::OutOfDomain {
                name: "delta",
                domain: "(0, 1)",
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            let first = m.chars().next().unwrap();
            assert!(first.is_lowercase(), "message should start lowercase: {m}");
            assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
