//! Burn-in policies: deciding when a simulated system is stationary.
//!
//! The paper measures "a stabilized system after a burn-in phase of suitable
//! length" without specifying the length. We provide two policies:
//!
//! - [`BurnIn::Fixed`] — run a fixed number of rounds. The theoretical
//!   mixing scale of CAPPED(c, λ) is governed by `1/(1−λ)` (the pool
//!   approaches its fixed point exponentially with that time constant), so a
//!   sensible fixed choice is a small multiple of `1/(1−λ)`.
//! - [`BurnIn::Adaptive`] — run until the pool-size series is statistically
//!   flat: both the relative half-window mean drift and the relative
//!   regression slope over a sliding window fall below a tolerance. A
//!   `max_rounds` bound guarantees termination.
//!
//! Both report how many rounds were spent and whether convergence was
//! diagnosed, so measurement code can assert burn-in adequacy.

use crate::engine::Simulation;
use crate::process::AllocationProcess;
use crate::stats::TimeSeries;

/// A burn-in policy.
#[derive(Debug, Clone, PartialEq)]
pub enum BurnIn {
    /// Run exactly `rounds` rounds.
    Fixed {
        /// Number of rounds to run.
        rounds: u64,
    },
    /// Run until the system-load series (pool + buffered balls)
    /// stabilizes.
    Adaptive {
        /// Minimum rounds before convergence may be declared.
        min_rounds: u64,
        /// Hard upper bound on burn-in length.
        max_rounds: u64,
        /// Length of the sliding diagnostic window (also the cadence at
        /// which convergence is re-checked).
        window: u64,
        /// Maximum allowed relative drift/slope over the window for the
        /// series to count as stationary (e.g. `0.02` for 2 %).
        tolerance: f64,
    },
}

impl BurnIn {
    /// A fixed burn-in scaled to the theoretical mixing time of a process
    /// with injection rate `λ`: `multiplier / (1 − λ)` rounds, clamped to
    /// `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `λ ≥ 1`.
    pub fn mixing_scaled(lambda: f64, multiplier: f64, min: u64, max: u64) -> BurnIn {
        assert!(lambda < 1.0, "mixing time undefined for lambda >= 1");
        let rounds = (multiplier / (1.0 - lambda)).ceil() as u64;
        BurnIn::Fixed {
            rounds: rounds.clamp(min, max),
        }
    }

    /// The default adaptive policy used by the figure harness.
    pub fn default_adaptive(lambda: f64) -> BurnIn {
        let scale = if lambda < 1.0 {
            (4.0 / (1.0 - lambda)).ceil() as u64
        } else {
            u64::MAX / 4
        };
        BurnIn::Adaptive {
            min_rounds: 256,
            max_rounds: scale.clamp(2_048, 400_000),
            window: 256,
            tolerance: 0.02,
        }
    }
}

/// What a burn-in run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurnInOutcome {
    /// Number of rounds executed.
    pub rounds: u64,
    /// Whether the adaptive policy diagnosed stationarity (always `true`
    /// for the fixed policy).
    pub converged: bool,
}

/// Runs the burn-in policy on a simulation, discarding all metrics.
///
/// Returns how many rounds were executed and whether stationarity was
/// diagnosed.
pub fn run_burn_in<P: AllocationProcess>(
    sim: &mut Simulation<P>,
    policy: &BurnIn,
) -> BurnInOutcome {
    match *policy {
        BurnIn::Fixed { rounds } => {
            sim.run_rounds(rounds);
            BurnInOutcome {
                rounds,
                converged: true,
            }
        }
        BurnIn::Adaptive {
            min_rounds,
            max_rounds,
            window,
            tolerance,
        } => {
            let window = window.max(4);
            let mut series = TimeSeries::with_capacity(window as usize * 2);
            let mut executed = 0u64;
            while executed < max_rounds {
                let chunk = window.min(max_rounds - executed);
                for _ in 0..chunk {
                    let report = sim.step();
                    // Track the total system load (pool + buffers): for
                    // unbounded-queue processes the pool is identically 0
                    // and only the buffered backlog reveals the transient.
                    series.push(report.system_load() as f64);
                }
                executed += chunk;
                if executed < min_rounds {
                    continue;
                }
                let w = (2 * window) as usize;
                let drift_ok = series
                    .half_mean_drift(w)
                    .map(|d| d < tolerance)
                    .unwrap_or(false);
                // Slope per round, relative to the window mean (guarding the
                // empty-pool case with +1): flat means slope ≪ scale/window.
                let mean = series.window_summary(w).mean().abs() + 1.0;
                let slope_ok = series
                    .window_slope(w)
                    .map(|s| s.abs() * w as f64 / mean < tolerance * 4.0)
                    .unwrap_or(false);
                if drift_ok && slope_ok {
                    return BurnInOutcome {
                        rounds: executed,
                        converged: true,
                    };
                }
            }
            BurnInOutcome {
                rounds: executed,
                converged: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{AllocationProcess, RoundReport};
    use crate::rng::SimRng;

    /// A process whose pool rises toward a fixed point, mimicking the
    /// transient of CAPPED(c, λ).
    struct Relaxing {
        pool: f64,
        target: f64,
        rate: f64,
        round: u64,
    }

    impl AllocationProcess for Relaxing {
        fn bins(&self) -> usize {
            1
        }
        fn round(&self) -> u64 {
            self.round
        }
        fn pool_size(&self) -> usize {
            self.pool as usize
        }
        fn step(&mut self, rng: &mut SimRng) -> RoundReport {
            self.round += 1;
            let noise = (rng.unit_f64() - 0.5) * 0.01 * self.target;
            self.pool += self.rate * (self.target - self.pool) + noise;
            RoundReport {
                round: self.round,
                pool_size: self.pool.max(0.0) as u64,
                ..RoundReport::default()
            }
        }
    }

    fn relaxing() -> Relaxing {
        Relaxing {
            pool: 0.0,
            target: 10_000.0,
            rate: 0.01,
            round: 0,
        }
    }

    #[test]
    fn fixed_policy_runs_exact_rounds() {
        let mut sim = Simulation::new(relaxing(), SimRng::seed_from(1));
        let out = run_burn_in(&mut sim, &BurnIn::Fixed { rounds: 100 });
        assert_eq!(out.rounds, 100);
        assert!(out.converged);
        assert_eq!(sim.process().round(), 100);
    }

    #[test]
    fn adaptive_policy_waits_for_stationarity() {
        let mut sim = Simulation::new(relaxing(), SimRng::seed_from(2));
        let policy = BurnIn::Adaptive {
            min_rounds: 64,
            max_rounds: 50_000,
            window: 64,
            tolerance: 0.02,
        };
        let out = run_burn_in(&mut sim, &policy);
        assert!(out.converged, "should converge within bound");
        // Relaxation time constant is 1/rate = 100 rounds; convergence
        // should need at least one time constant and be near target.
        assert!(out.rounds >= 64);
        let pool = sim.process().pool_size() as f64;
        assert!(
            (pool - 10_000.0).abs() < 2_000.0,
            "pool {pool} far from target"
        );
    }

    #[test]
    fn adaptive_policy_gives_up_at_max_rounds() {
        // Ever-growing pool never converges.
        struct Growing {
            round: u64,
        }
        impl AllocationProcess for Growing {
            fn bins(&self) -> usize {
                1
            }
            fn round(&self) -> u64 {
                self.round
            }
            fn pool_size(&self) -> usize {
                (self.round * 10) as usize
            }
            fn step(&mut self, _rng: &mut SimRng) -> RoundReport {
                self.round += 1;
                RoundReport {
                    round: self.round,
                    pool_size: self.round * 10,
                    ..RoundReport::default()
                }
            }
        }
        let mut sim = Simulation::new(Growing { round: 0 }, SimRng::seed_from(3));
        let policy = BurnIn::Adaptive {
            min_rounds: 10,
            max_rounds: 500,
            window: 50,
            tolerance: 0.01,
        };
        let out = run_burn_in(&mut sim, &policy);
        assert!(!out.converged);
        assert_eq!(out.rounds, 500);
    }

    #[test]
    fn mixing_scaled_clamps() {
        assert_eq!(
            BurnIn::mixing_scaled(0.5, 10.0, 1, 1000),
            BurnIn::Fixed { rounds: 20 }
        );
        assert_eq!(
            BurnIn::mixing_scaled(0.999, 10.0, 1, 1000),
            BurnIn::Fixed { rounds: 1000 }
        );
        assert_eq!(
            BurnIn::mixing_scaled(0.0, 10.0, 50, 1000),
            BurnIn::Fixed { rounds: 50 }
        );
    }

    #[test]
    #[should_panic(expected = "mixing time")]
    fn mixing_scaled_rejects_lambda_one() {
        BurnIn::mixing_scaled(1.0, 1.0, 1, 10);
    }
}
