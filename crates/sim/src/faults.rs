//! Deterministic fault injection and recovery measurement.
//!
//! The paper proves CAPPED(c, λ) keeps its pool bounded under steady
//! `λn` arrivals; this module provides the machinery to ask what happens
//! when the steady-state assumptions break — bins crash and recover,
//! capacities degrade, arrivals burst — and to *measure* how fast the
//! system returns to its stationary band afterwards.
//!
//! The three pieces:
//!
//! - [`FaultPlan`] — a round-keyed, serializable schedule of
//!   [`FaultEvent`]s. Plans are plain data: build them by hand, generate
//!   stochastic churn with [`ChurnModel`] from a dedicated RNG stream, or
//!   round-trip them through the checkpoint codec ([`FaultPlan::to_bytes`]).
//! - [`FaultedProcess`] — a wrapper implementing
//!   [`AllocationProcess`] that applies a plan to any inner process
//!   exposing the small [`FaultTolerant`] trait. With an empty plan the
//!   wrapper is a strict identity: it touches neither the process state
//!   nor the RNG stream, so the faulted trajectory is bit-identical to the
//!   bare one (property-tested in `iba-core`).
//! - [`run_recovery`] / [`measure_recovery`] — the recovery
//!   instrumentation: burn in, record a pre-fault baseline, play the plan,
//!   then count the rounds until the pool re-enters an ε-band around the
//!   baseline ([`RecoveryReport`]), aggregated across replications into a
//!   [`RecoveryEstimate`] via [`crate::runner::PointEstimate`].
//!
//! Everything here is deterministic per `(master seed, plan)`: replaying
//! the same seed reproduces every crash, every recovery and every metric
//! bit-exactly.

use std::collections::BTreeMap;

use crate::codec::{CodecError, Decoder, Encoder};
use crate::obs;
use crate::process::{AllocationProcess, RoundReport};
use crate::rng::SimRng;
use crate::runner::{replicate, PointEstimate};

/// The fault surface an allocation process exposes so that
/// [`FaultedProcess`] can drive it from a [`FaultPlan`].
///
/// Implementations must keep ball conservation intact across every
/// operation: crashing a bin freezes its buffered balls, it must not drop
/// them.
pub trait FaultTolerant: AllocationProcess {
    /// Takes bin `i` offline: it stops serving and accepts nothing until
    /// [`recover_bin`](Self::recover_bin). Idempotent. `i` is guaranteed
    /// in-range by the caller ([`FaultedProcess`] filters).
    fn crash_bin(&mut self, i: usize);

    /// Brings bin `i` back online. Idempotent.
    fn recover_bin(&mut self, i: usize);

    /// Number of currently offline bins.
    fn offline_bins(&self) -> usize;

    /// Sets bin `i`'s buffer capacity: `Some(c)` (with `c ≥ 1`) bounds the
    /// buffer, `None` makes it unbounded. Balls already buffered above a
    /// lowered capacity stay (the bin rejects until it drains). Processes
    /// without per-bin capacities ignore this (default no-op).
    fn set_bin_capacity(&mut self, _i: usize, _capacity: Option<u32>) {}

    /// Injects `extra` balls into the process's allocation backlog (pool),
    /// labeled with the current round. Used for arrival bursts and pool
    /// surges; the injected balls must count toward ball conservation.
    fn surge_pool(&mut self, extra: u64);
}

/// One scheduled fault.
///
/// Bin indices that are out of range for the wrapped process, and
/// `DegradeCapacity` with `Some(0)`, are *skipped* by [`FaultedProcess`]
/// rather than panicking — fault plans are experiment inputs and a
/// robustness harness should not fall over on a malformed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Take the listed bins offline.
    CrashBins {
        /// Bin indices to crash.
        bins: Vec<usize>,
    },
    /// Bring the listed bins back online.
    RecoverBins {
        /// Bin indices to recover.
        bins: Vec<usize>,
    },
    /// Change the listed bins' buffer capacity (`None` = unbounded).
    DegradeCapacity {
        /// Bin indices to modify.
        bins: Vec<usize>,
        /// New capacity; `Some(c)` requires `c ≥ 1`, `None` is unbounded.
        capacity: Option<u32>,
    },
    /// Inject `extra_per_round` additional balls at the start of each of
    /// the next `rounds` rounds (including the round the event fires in).
    ArrivalBurst {
        /// Additional balls injected per round.
        extra_per_round: u64,
        /// Number of consecutive rounds the burst lasts.
        rounds: u64,
    },
    /// One-shot injection of `extra` balls into the pool.
    PoolSurge {
        /// Number of balls injected.
        extra: u64,
    },
}

const EVENT_CRASH: u32 = 0;
const EVENT_RECOVER: u32 = 1;
const EVENT_DEGRADE: u32 = 2;
const EVENT_BURST: u32 = 3;
const EVENT_SURGE: u32 = 4;

impl FaultEvent {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            FaultEvent::CrashBins { bins } => {
                enc.u32(EVENT_CRASH);
                enc.u64_seq(
                    bins.iter()
                        .map(|&b| b as u64)
                        .collect::<Vec<_>>()
                        .into_iter(),
                );
            }
            FaultEvent::RecoverBins { bins } => {
                enc.u32(EVENT_RECOVER);
                enc.u64_seq(
                    bins.iter()
                        .map(|&b| b as u64)
                        .collect::<Vec<_>>()
                        .into_iter(),
                );
            }
            FaultEvent::DegradeCapacity { bins, capacity } => {
                enc.u32(EVENT_DEGRADE);
                enc.u64_seq(
                    bins.iter()
                        .map(|&b| b as u64)
                        .collect::<Vec<_>>()
                        .into_iter(),
                );
                enc.u64(capacity.map_or(0, u64::from));
            }
            FaultEvent::ArrivalBurst {
                extra_per_round,
                rounds,
            } => {
                enc.u32(EVENT_BURST);
                enc.u64(*extra_per_round);
                enc.u64(*rounds);
            }
            FaultEvent::PoolSurge { extra } => {
                enc.u32(EVENT_SURGE);
                enc.u64(*extra);
            }
        }
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let kind = dec.u32("fault event kind")?;
        let bins_of = |dec: &mut Decoder<'_>| -> Result<Vec<usize>, CodecError> {
            Ok(dec
                .u64_seq("fault event bins")?
                .into_iter()
                .map(|b| b as usize)
                .collect())
        };
        match kind {
            EVENT_CRASH => Ok(FaultEvent::CrashBins {
                bins: bins_of(dec)?,
            }),
            EVENT_RECOVER => Ok(FaultEvent::RecoverBins {
                bins: bins_of(dec)?,
            }),
            EVENT_DEGRADE => {
                let bins = bins_of(dec)?;
                let raw = dec.u64("degraded capacity")?;
                let capacity = if raw == 0 {
                    None
                } else {
                    Some(u32::try_from(raw).map_err(|_| CodecError::Invalid {
                        what: "degraded capacity",
                    })?)
                };
                Ok(FaultEvent::DegradeCapacity { bins, capacity })
            }
            EVENT_BURST => Ok(FaultEvent::ArrivalBurst {
                extra_per_round: dec.u64("burst extra")?,
                rounds: dec.u64("burst rounds")?,
            }),
            EVENT_SURGE => Ok(FaultEvent::PoolSurge {
                extra: dec.u64("surge extra")?,
            }),
            _ => Err(CodecError::Invalid {
                what: "fault event kind",
            }),
        }
    }
}

/// Checkpoint tag for serialized fault plans.
const PLAN_TAG: &str = "IBAF";
/// Current fault-plan format version.
const PLAN_VERSION: u32 = 1;

/// A round-keyed schedule of fault events.
///
/// Rounds are 1-based, matching [`AllocationProcess::round`]: an event
/// scheduled at round `r` is applied immediately *before* the step that
/// produces round `r`, so the fault is in force for all of round `r`.
/// Events within one round apply in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: BTreeMap<u64, Vec<FaultEvent>>,
}

impl FaultPlan {
    /// Creates an empty plan (a [`FaultedProcess`] with an empty plan is a
    /// strict identity wrapper).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `event` at `round` (1-based; events at a round apply
    /// before that round's step).
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` — round 0 is the initial state, no step
    /// produces it.
    pub fn insert(&mut self, round: u64, event: FaultEvent) {
        assert!(round > 0, "fault events schedule at rounds >= 1");
        self.events.entry(round).or_default().push(event);
    }

    /// Builder-style [`insert`](Self::insert).
    #[must_use]
    pub fn with(mut self, round: u64, event: FaultEvent) -> Self {
        self.insert(round, event);
        self
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Earliest round with an event, if any.
    pub fn first_round(&self) -> Option<u64> {
        self.events.keys().next().copied()
    }

    /// Latest round with an event, if any.
    pub fn last_round(&self) -> Option<u64> {
        self.events.keys().next_back().copied()
    }

    /// The events scheduled at `round` (empty for fault-free rounds).
    pub fn events_at(&self, round: u64) -> &[FaultEvent] {
        self.events.get(&round).map_or(&[], Vec::as_slice)
    }

    /// Iterates over `(round, events)` in round order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[FaultEvent])> {
        self.events.iter().map(|(&r, evs)| (r, evs.as_slice()))
    }

    /// Returns the plan with every event moved `offset` rounds later.
    /// Used by [`run_recovery`] to place a plan authored relative to the
    /// end of burn-in (round 1 = first measured round) at its absolute
    /// position.
    #[must_use]
    pub fn shifted(self, offset: u64) -> Self {
        FaultPlan {
            events: self
                .events
                .into_iter()
                .map(|(r, evs)| (r + offset, evs))
                .collect(),
        }
    }

    /// Serializes the plan (versioned, CRC32-checksummed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.header(PLAN_TAG, PLAN_VERSION);
        enc.usize(self.events.len());
        for (&round, events) in &self.events {
            enc.u64(round);
            enc.usize(events.len());
            for event in events {
                event.encode_into(&mut enc);
            }
        }
        enc.finish()
    }

    /// Deserializes a plan written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on corrupted, truncated, malformed or
    /// future-versioned input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes)?;
        dec.header(PLAN_TAG, PLAN_VERSION)?;
        let round_count = dec.usize("plan round count")?;
        let mut events = BTreeMap::new();
        for _ in 0..round_count {
            let round = dec.u64("plan round")?;
            if round == 0 {
                return Err(CodecError::Invalid { what: "plan round" });
            }
            let count = dec.usize("plan event count")?;
            let mut list = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                list.push(FaultEvent::decode_from(&mut dec)?);
            }
            if events.insert(round, list).is_some() {
                return Err(CodecError::Invalid {
                    what: "duplicate plan round",
                });
            }
        }
        if !dec.is_exhausted() {
            return Err(CodecError::Invalid {
                what: "trailing bytes",
            });
        }
        Ok(FaultPlan { events })
    }

    /// Generates an i.i.d. churn plan: see [`ChurnModel::generate`].
    pub fn churn(bins: usize, model: &ChurnModel, rng: &mut SimRng) -> Self {
        model.generate(bins, rng)
    }
}

/// Stochastic bin-churn generator: i.i.d. per-round crash/recover
/// probabilities, in the spirit of the related work on self-stabilizing
/// balls-into-bins with failing bins and dynamic bin sets.
///
/// Drive it with a **dedicated RNG stream** split from the master seed
/// (e.g. [`SimRng::split`]) so the generated plan is reproducible and
/// independent of the simulation's own randomness.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnModel {
    /// Per-round probability that each *online* bin crashes.
    pub crash_prob: f64,
    /// Per-round probability that each *offline* bin recovers.
    pub recover_prob: f64,
    /// First round (1-based) of the churn window.
    pub start_round: u64,
    /// Number of rounds the churn window lasts.
    pub rounds: u64,
    /// If set, a final `RecoverBins` event at the round after the window
    /// brings every still-offline bin back, so the system is guaranteed
    /// to be fault-free after [`FaultPlan::last_round`].
    pub heal_at_end: bool,
}

impl ChurnModel {
    /// Generates the plan for `bins` bins, drawing from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `start_round == 0` or `rounds == 0`.
    pub fn generate(&self, bins: usize, rng: &mut SimRng) -> FaultPlan {
        assert!(self.start_round > 0, "churn must start at round >= 1");
        assert!(self.rounds > 0, "churn window must span at least one round");
        let mut plan = FaultPlan::new();
        let mut offline = vec![false; bins];
        for round in self.start_round..self.start_round + self.rounds {
            let mut crashed = Vec::new();
            let mut recovered = Vec::new();
            for (i, is_offline) in offline.iter_mut().enumerate() {
                if *is_offline {
                    if rng.bernoulli(self.recover_prob) {
                        *is_offline = false;
                        recovered.push(i);
                    }
                } else if rng.bernoulli(self.crash_prob) {
                    *is_offline = true;
                    crashed.push(i);
                }
            }
            if !recovered.is_empty() {
                plan.insert(round, FaultEvent::RecoverBins { bins: recovered });
            }
            if !crashed.is_empty() {
                plan.insert(round, FaultEvent::CrashBins { bins: crashed });
            }
        }
        if self.heal_at_end {
            let still_offline: Vec<usize> = offline
                .iter()
                .enumerate()
                .filter_map(|(i, &o)| o.then_some(i))
                .collect();
            if !still_offline.is_empty() {
                plan.insert(
                    self.start_round + self.rounds,
                    FaultEvent::RecoverBins {
                        bins: still_offline,
                    },
                );
            }
        }
        plan
    }
}

/// Wraps a [`FaultTolerant`] process and applies a [`FaultPlan`] to it as
/// rounds advance.
///
/// Events scheduled at round `r` are applied immediately before the step
/// that produces round `r`. With an empty plan the wrapper neither
/// touches the inner process nor draws randomness, so the trajectory is
/// bit-identical to running the inner process bare.
#[derive(Debug, Clone)]
pub struct FaultedProcess<P> {
    inner: P,
    plan: FaultPlan,
    /// Active arrival bursts as `(last_round_inclusive, extra_per_round)`.
    bursts: Vec<(u64, u64)>,
}

impl<P: FaultTolerant> FaultedProcess<P> {
    /// Wraps `inner`, scheduling `plan` against its current round counter
    /// (a plan round `r` fires before the step producing round `r`,
    /// whether or not the process has already advanced past other
    /// scheduled rounds — stale events simply never fire).
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        FaultedProcess {
            inner,
            plan,
            bursts: Vec::new(),
        }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped process.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps the inner process.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// The schedule driving this wrapper.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn apply_events(&mut self, round: u64) {
        if self.plan.events_at(round).is_empty() {
            return;
        }
        let n = self.inner.bins();
        // Clone the round's events so the plan stays intact for replays
        // and inspection; event lists are tiny next to a simulation round.
        let events = self.plan.events_at(round).to_vec();
        for event in events {
            match event {
                FaultEvent::CrashBins { bins } => {
                    let mut hit = 0u64;
                    for i in bins.into_iter().filter(|&i| i < n) {
                        self.inner.crash_bin(i);
                        hit += 1;
                    }
                    if let Some(p) = obs::probes() {
                        p.crashed_bins.add(hit);
                        iba_obs::flight::fault_triggered(round, "crash-bins");
                    }
                }
                FaultEvent::RecoverBins { bins } => {
                    let mut hit = 0u64;
                    for i in bins.into_iter().filter(|&i| i < n) {
                        self.inner.recover_bin(i);
                        hit += 1;
                    }
                    if let Some(p) = obs::probes() {
                        p.recovered_bins.add(hit);
                        iba_obs::flight::fault_triggered(round, "recover-bins");
                    }
                }
                FaultEvent::DegradeCapacity { bins, capacity } => {
                    if capacity == Some(0) {
                        continue; // malformed: capacities are >= 1 or unbounded
                    }
                    let mut hit = 0u64;
                    for i in bins.into_iter().filter(|&i| i < n) {
                        self.inner.set_bin_capacity(i, capacity);
                        hit += 1;
                    }
                    if let Some(p) = obs::probes() {
                        p.degraded_bins.add(hit);
                        iba_obs::flight::fault_triggered(round, "degrade-capacity");
                    }
                }
                FaultEvent::ArrivalBurst {
                    extra_per_round,
                    rounds,
                } => {
                    if extra_per_round > 0 && rounds > 0 {
                        self.bursts.push((round + rounds - 1, extra_per_round));
                        if let Some(p) = obs::probes() {
                            p.bursts.inc();
                            iba_obs::flight::fault_triggered(round, "arrival-burst");
                        }
                    }
                }
                FaultEvent::PoolSurge { extra } => {
                    if extra > 0 {
                        self.inner.surge_pool(extra);
                        if let Some(p) = obs::probes() {
                            p.surge_balls.add(extra);
                            iba_obs::flight::fault_triggered(round, "pool-surge");
                        }
                    }
                }
            }
        }
    }

    /// Applies everything scheduled before the upcoming round: the plan's
    /// events for that round, then any arrival bursts still active.
    fn apply_pre_round_faults(&mut self) {
        let round = self.inner.round() + 1;
        self.apply_events(round);
        if !self.bursts.is_empty() {
            self.bursts.retain(|&(until, _)| until >= round);
            let mut surged = 0u64;
            for &(_, extra) in &self.bursts {
                self.inner.surge_pool(extra);
                surged += extra;
            }
            if let Some(p) = obs::probes() {
                p.surge_balls.add(surged);
            }
        }
    }
}

impl<P: FaultTolerant> AllocationProcess for FaultedProcess<P> {
    fn bins(&self) -> usize {
        self.inner.bins()
    }

    fn round(&self) -> u64 {
        self.inner.round()
    }

    fn pool_size(&self) -> usize {
        self.inner.pool_size()
    }

    fn step(&mut self, rng: &mut SimRng) -> RoundReport {
        self.apply_pre_round_faults();
        self.inner.step(rng)
    }

    fn step_into(&mut self, rng: &mut SimRng, report: &mut RoundReport) {
        self.apply_pre_round_faults();
        self.inner.step_into(rng, report);
    }

    fn label(&self) -> String {
        format!("faulted({})", self.inner.label())
    }

    fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Parameters of the recovery measurement protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOptions {
    /// Fault-free rounds before the plan starts (the plan is authored
    /// relative to the end of this burn-in).
    pub burnin: u64,
    /// Final burn-in rounds over which the pre-fault baseline (pool mean,
    /// waiting-time mean) is measured. Must be `1..=burnin`.
    pub baseline_window: u64,
    /// Half-width of the re-stabilization band, as a fraction of the
    /// baseline pool mean.
    pub epsilon: f64,
    /// Absolute floor of the band half-width (in balls) so near-empty
    /// pools are not held to a sub-fluctuation standard.
    pub min_band: f64,
    /// Consecutive in-band rounds required to declare re-stabilization.
    pub stable_rounds: u64,
    /// Post-fault rounds to scan before giving up
    /// (`rounds_to_restabilize` = `None`).
    pub max_rounds: u64,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            burnin: 400,
            baseline_window: 200,
            epsilon: 0.25,
            min_band: 8.0,
            stable_rounds: 50,
            max_rounds: 10_000,
        }
    }
}

/// What one faulted run measured: the pre-fault baseline, the damage at
/// its worst, and how long the system took to return to normal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Mean pool size over the pre-fault baseline window.
    pub baseline_pool: f64,
    /// Mean waiting time over the pre-fault baseline window (0 if no
    /// ball was deleted in it).
    pub baseline_wait: f64,
    /// Absolute round of the first scheduled fault event.
    pub fault_start: u64,
    /// Absolute round of the last scheduled fault event.
    pub fault_end: u64,
    /// Peak pool size from the first fault round through the recovery
    /// scan.
    pub peak_pool: u64,
    /// Peak system load (pool + buffered) over the same span.
    pub peak_backlog: u64,
    /// Mean waiting time of balls deleted during the fault window
    /// (`fault_start..=fault_end`); 0 if none were.
    pub mid_fault_wait: f64,
    /// Number of balls deleted during the fault window.
    pub mid_fault_deletions: u64,
    /// Rounds after `fault_end` until the pool had stayed inside the
    /// ε-band for `stable_rounds` consecutive rounds, counted to the
    /// *start* of that stable stretch. `None` if it never did within
    /// `max_rounds`.
    pub rounds_to_restabilize: Option<u64>,
}

impl RecoveryReport {
    /// Whether the pool re-entered its baseline band within the scan.
    pub fn recovered(&self) -> bool {
        self.rounds_to_restabilize.is_some()
    }

    /// Waiting-time impact on balls served mid-fault, relative to the
    /// pre-fault baseline (positive = slower).
    pub fn wait_impact(&self) -> f64 {
        self.mid_fault_wait - self.baseline_wait
    }
}

/// Runs one faulted simulation to completion of its recovery scan.
///
/// `plan` is authored **relative to the end of burn-in**: plan round 1 is
/// the first round after `opts.burnin`. The function shifts it into
/// absolute rounds, burns in, measures the baseline over the last
/// `opts.baseline_window` burn-in rounds, plays the fault window while
/// recording peak backlog and mid-fault waiting times, then scans up to
/// `opts.max_rounds` rounds for the pool to hold inside
/// `±max(epsilon · baseline, min_band)` for `stable_rounds` consecutive
/// rounds.
///
/// # Panics
///
/// Panics if the plan is empty, `baseline_window` is not in
/// `1..=burnin`, or `stable_rounds == 0`.
pub fn run_recovery<P: FaultTolerant>(
    process: P,
    plan: FaultPlan,
    opts: &RecoveryOptions,
    rng: &mut SimRng,
) -> RecoveryReport {
    assert!(
        !plan.is_empty(),
        "recovery measurement needs at least one fault event"
    );
    assert!(
        opts.baseline_window >= 1 && opts.baseline_window <= opts.burnin,
        "baseline window must fit inside the burn-in"
    );
    assert!(opts.stable_rounds >= 1, "need at least one stable round");

    let plan = plan.shifted(opts.burnin);
    let fault_start = plan.first_round().expect("non-empty plan");
    let fault_end = plan.last_round().expect("non-empty plan");
    let mut faulted = FaultedProcess::new(process, plan);

    // Burn-in; the last `baseline_window` rounds define normality.
    let mut pool_sum = 0.0;
    let mut wait_sum = 0.0;
    let mut wait_count = 0u64;
    for r in 1..=opts.burnin {
        let report = faulted.step(rng);
        if r > opts.burnin - opts.baseline_window {
            pool_sum += report.pool_size as f64;
            wait_sum += report.waiting_times.iter().sum::<u64>() as f64;
            wait_count += report.waiting_times.len() as u64;
        }
    }
    let baseline_pool = pool_sum / opts.baseline_window as f64;
    let baseline_wait = if wait_count > 0 {
        wait_sum / wait_count as f64
    } else {
        0.0
    };
    let band = (opts.epsilon * baseline_pool).max(opts.min_band);

    // Fault window.
    let mut peak_pool = 0u64;
    let mut peak_backlog = 0u64;
    let mut mid_wait_sum = 0.0;
    let mut mid_fault_deletions = 0u64;
    for _ in opts.burnin + 1..=fault_end {
        let report = faulted.step(rng);
        peak_pool = peak_pool.max(report.pool_size);
        peak_backlog = peak_backlog.max(report.system_load());
        if report.round >= fault_start {
            mid_wait_sum += report.waiting_times.iter().sum::<u64>() as f64;
            mid_fault_deletions += report.waiting_times.len() as u64;
        }
    }
    let mid_fault_wait = if mid_fault_deletions > 0 {
        mid_wait_sum / mid_fault_deletions as f64
    } else {
        0.0
    };

    // Recovery scan.
    let mut stable_streak = 0u64;
    let mut rounds_to_restabilize = None;
    for k in 1..=opts.max_rounds {
        let report = faulted.step(rng);
        peak_pool = peak_pool.max(report.pool_size);
        peak_backlog = peak_backlog.max(report.system_load());
        if (report.pool_size as f64 - baseline_pool).abs() <= band {
            stable_streak += 1;
            if stable_streak == opts.stable_rounds {
                rounds_to_restabilize = Some(k + 1 - opts.stable_rounds);
                break;
            }
        } else {
            stable_streak = 0;
        }
    }

    if let Some(p) = obs::probes() {
        // Record the measurement into the registry so experiment harnesses
        // (the `chaos` ablation) can report fleet-wide recovery totals
        // without re-accumulating the per-replication reports.
        p.recovery_runs.inc();
        match rounds_to_restabilize {
            Some(rounds) => p.recovery_rounds.record(rounds),
            None => p.recovery_unrecovered.inc(),
        }
        p.recovery_peak_pool.record_max(peak_pool);
        p.recovery_peak_backlog.record_max(peak_backlog);
    }

    RecoveryReport {
        baseline_pool,
        baseline_wait,
        fault_start,
        fault_end,
        peak_pool,
        peak_backlog,
        mid_fault_wait,
        mid_fault_deletions,
        rounds_to_restabilize,
    }
}

/// [`RecoveryReport`]s aggregated across replications.
#[derive(Debug, Clone)]
pub struct RecoveryEstimate {
    /// Number of replications run.
    pub replications: usize,
    /// How many of them re-stabilized within the scan.
    pub recovered: usize,
    /// Rounds-to-restabilize across the replications that recovered
    /// (`None` if none did).
    pub rounds_to_restabilize: Option<PointEstimate>,
    /// Peak pool size across replications.
    pub peak_pool: PointEstimate,
    /// Peak system load (pool + buffered) across replications.
    pub peak_backlog: PointEstimate,
    /// Pre-fault baseline pool mean across replications.
    pub baseline_pool: PointEstimate,
    /// Mid-fault waiting-time impact (mid-fault mean − baseline mean)
    /// across replications.
    pub wait_impact: PointEstimate,
    /// The individual per-replication reports, in replication order.
    pub reports: Vec<RecoveryReport>,
}

/// Runs `replications` independent faulted simulations (parallel, one
/// decorrelated RNG stream each — see [`crate::runner::replicate`]) and
/// aggregates their [`RecoveryReport`]s.
///
/// `build` receives `(replication_index, &mut rng)` and returns the
/// process plus the (relative) fault plan for that replication. Split the
/// plan's randomness off the replication stream (`rng.split()`) to keep
/// churn generation reproducible and decoupled from the simulation's own
/// draws. The whole estimate is a pure function of
/// `(master_seed, replications, opts, build)`.
///
/// # Panics
///
/// Panics if `replications == 0` or any plan is empty.
pub fn measure_recovery<P, F>(
    master_seed: u64,
    replications: usize,
    opts: &RecoveryOptions,
    build: F,
) -> RecoveryEstimate
where
    P: FaultTolerant,
    F: Fn(usize, &mut SimRng) -> (P, FaultPlan) + Sync,
{
    let reports: Vec<RecoveryReport> = replicate(master_seed, replications, |i, mut rng| {
        let (process, plan) = build(i, &mut rng);
        run_recovery(process, plan, opts, &mut rng)
    });

    let recovered_rounds: Vec<f64> = reports
        .iter()
        .filter_map(|r| r.rounds_to_restabilize)
        .map(|r| r as f64)
        .collect();
    let collect = |f: fn(&RecoveryReport) -> f64| -> Vec<f64> { reports.iter().map(f).collect() };

    RecoveryEstimate {
        replications,
        recovered: recovered_rounds.len(),
        rounds_to_restabilize: if recovered_rounds.is_empty() {
            None
        } else {
            Some(PointEstimate::from_values(&recovered_rounds))
        },
        peak_pool: PointEstimate::from_values(&collect(|r| r.peak_pool as f64)),
        peak_backlog: PointEstimate::from_values(&collect(|r| r.peak_backlog as f64)),
        baseline_pool: PointEstimate::from_values(&collect(|r| r.baseline_pool)),
        wait_impact: PointEstimate::from_values(&collect(RecoveryReport::wait_impact)),
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal deterministic FaultTolerant process for exercising the
    /// plan/wrapper mechanics without depending on `iba-core`: `n` bins,
    /// one new ball per round, pooled balls go to `round % n` when that
    /// bin is online, every online non-empty bin serves one ball.
    #[derive(Debug, Clone, PartialEq)]
    struct ToyProcess {
        loads: Vec<u64>,
        capacities: Vec<Option<u32>>,
        offline: Vec<bool>,
        pool: u64,
        round: u64,
        generated: u64,
        deleted: u64,
    }

    impl ToyProcess {
        fn new(n: usize) -> Self {
            ToyProcess {
                loads: vec![0; n],
                capacities: vec![None; n],
                offline: vec![false; n],
                pool: 0,
                round: 0,
                generated: 0,
                deleted: 0,
            }
        }

        fn conserves(&self) -> bool {
            self.generated == self.deleted + self.pool + self.loads.iter().sum::<u64>()
        }
    }

    impl AllocationProcess for ToyProcess {
        fn bins(&self) -> usize {
            self.loads.len()
        }

        fn round(&self) -> u64 {
            self.round
        }

        fn pool_size(&self) -> usize {
            self.pool as usize
        }

        fn step(&mut self, _rng: &mut SimRng) -> RoundReport {
            self.round += 1;
            self.pool += 1;
            self.generated += 1;
            let target = (self.round % self.bins() as u64) as usize;
            let mut accepted = 0u64;
            let has_room = |load: u64, cap: Option<u32>| cap.is_none_or(|c| load < u64::from(c));
            while self.pool > 0
                && !self.offline[target]
                && has_room(self.loads[target], self.capacities[target])
            {
                self.loads[target] += 1;
                self.pool -= 1;
                accepted += 1;
            }
            let mut deleted = 0u64;
            for (load, &off) in self.loads.iter_mut().zip(&self.offline) {
                if !off && *load > 0 {
                    *load -= 1;
                    deleted += 1;
                }
            }
            self.deleted += deleted;
            RoundReport {
                round: self.round,
                generated: 1,
                thrown: accepted + self.pool,
                accepted,
                deleted,
                pool_size: self.pool,
                buffered: self.loads.iter().sum(),
                max_load: self.loads.iter().copied().max().unwrap_or(0),
                ..RoundReport::default()
            }
        }
    }

    impl FaultTolerant for ToyProcess {
        fn crash_bin(&mut self, i: usize) {
            self.offline[i] = true;
        }

        fn recover_bin(&mut self, i: usize) {
            self.offline[i] = false;
        }

        fn offline_bins(&self) -> usize {
            self.offline.iter().filter(|&&o| o).count()
        }

        fn set_bin_capacity(&mut self, i: usize, capacity: Option<u32>) {
            self.capacities[i] = capacity;
        }

        fn surge_pool(&mut self, extra: u64) {
            self.pool += extra;
            self.generated += extra;
        }
    }

    #[test]
    fn empty_plan_is_identity() {
        let mut bare = ToyProcess::new(4);
        let mut faulted = FaultedProcess::new(ToyProcess::new(4), FaultPlan::new());
        let mut rng_a = SimRng::seed_from(1);
        let mut rng_b = SimRng::seed_from(1);
        for _ in 0..50 {
            assert_eq!(bare.step(&mut rng_a), faulted.step(&mut rng_b));
        }
        assert_eq!(&bare, faulted.inner());
        assert_eq!(rng_a, rng_b, "wrapper must not draw randomness");
    }

    #[test]
    fn crash_and_recover_fire_at_their_rounds() {
        let plan = FaultPlan::new()
            .with(3, FaultEvent::CrashBins { bins: vec![0, 2] })
            .with(6, FaultEvent::RecoverBins { bins: vec![0] });
        let mut p = FaultedProcess::new(ToyProcess::new(4), plan);
        let mut rng = SimRng::seed_from(2);
        p.step(&mut rng);
        p.step(&mut rng);
        assert_eq!(p.inner().offline_bins(), 0);
        p.step(&mut rng); // round 3: crash applied before the step
        assert_eq!(p.inner().offline_bins(), 2);
        p.step(&mut rng);
        p.step(&mut rng);
        p.step(&mut rng); // round 6: bin 0 recovers
        assert_eq!(p.inner().offline_bins(), 1);
        assert!(p.inner().offline[2]);
        assert!(p.inner().conserves());
    }

    #[test]
    fn out_of_range_bins_and_zero_capacity_are_skipped() {
        let plan = FaultPlan::new()
            .with(1, FaultEvent::CrashBins { bins: vec![99, 1] })
            .with(
                1,
                FaultEvent::DegradeCapacity {
                    bins: vec![0],
                    capacity: Some(0),
                },
            )
            .with(
                1,
                FaultEvent::DegradeCapacity {
                    bins: vec![50, 0],
                    capacity: Some(3),
                },
            );
        let mut p = FaultedProcess::new(ToyProcess::new(4), plan);
        let mut rng = SimRng::seed_from(3);
        p.step(&mut rng);
        assert_eq!(p.inner().offline_bins(), 1);
        assert!(p.inner().offline[1]);
        assert_eq!(p.inner().capacities[0], Some(3));
    }

    #[test]
    fn arrival_burst_lasts_exactly_its_window() {
        let plan = FaultPlan::new().with(
            2,
            FaultEvent::ArrivalBurst {
                extra_per_round: 10,
                rounds: 3,
            },
        );
        let mut p = FaultedProcess::new(ToyProcess::new(1), plan);
        let mut rng = SimRng::seed_from(4);
        // Bin 0 is the only target and serves 1/round; generation is
        // 1/round, so without the burst the pool stays empty.
        let mut extra_seen = Vec::new();
        for _ in 0..6 {
            let before = p.inner().generated;
            p.step(&mut rng);
            extra_seen.push(p.inner().generated - before - 1);
        }
        assert_eq!(extra_seen, vec![0, 10, 10, 10, 0, 0]);
        assert!(p.inner().conserves());
    }

    #[test]
    fn pool_surge_is_one_shot() {
        let plan = FaultPlan::new().with(2, FaultEvent::PoolSurge { extra: 7 });
        let mut p = FaultedProcess::new(ToyProcess::new(2), plan);
        let mut rng = SimRng::seed_from(5);
        p.step(&mut rng);
        let before = p.inner().generated;
        p.step(&mut rng);
        assert_eq!(p.inner().generated - before, 8); // 1 regular + 7 surge
        let before = p.inner().generated;
        p.step(&mut rng);
        assert_eq!(p.inner().generated - before, 1);
    }

    #[test]
    fn plan_roundtrips_through_codec() {
        let plan = FaultPlan::new()
            .with(
                5,
                FaultEvent::CrashBins {
                    bins: vec![1, 2, 3],
                },
            )
            .with(
                5,
                FaultEvent::DegradeCapacity {
                    bins: vec![0],
                    capacity: Some(2),
                },
            )
            .with(
                7,
                FaultEvent::DegradeCapacity {
                    bins: vec![4],
                    capacity: None,
                },
            )
            .with(
                9,
                FaultEvent::ArrivalBurst {
                    extra_per_round: 100,
                    rounds: 4,
                },
            )
            .with(12, FaultEvent::PoolSurge { extra: 1000 })
            .with(
                20,
                FaultEvent::RecoverBins {
                    bins: vec![1, 2, 3],
                },
            );
        let bytes = plan.to_bytes();
        let decoded = FaultPlan::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(plan, decoded);
        assert_eq!(decoded.len(), 6);
        assert_eq!(decoded.first_round(), Some(5));
        assert_eq!(decoded.last_round(), Some(20));
    }

    #[test]
    fn plan_decode_rejects_corruption_and_garbage() {
        let plan = FaultPlan::new().with(3, FaultEvent::PoolSurge { extra: 5 });
        let mut bytes = plan.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            FaultPlan::from_bytes(&bytes),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        assert!(FaultPlan::from_bytes(b"junk").is_err());
    }

    #[test]
    fn shifted_moves_every_round() {
        let plan = FaultPlan::new()
            .with(1, FaultEvent::PoolSurge { extra: 1 })
            .with(4, FaultEvent::PoolSurge { extra: 2 })
            .shifted(100);
        assert_eq!(plan.first_round(), Some(101));
        assert_eq!(plan.last_round(), Some(104));
        assert_eq!(plan.events_at(4), &[]);
        assert_eq!(plan.events_at(104), &[FaultEvent::PoolSurge { extra: 2 }]);
    }

    #[test]
    #[should_panic(expected = "rounds >= 1")]
    fn round_zero_events_are_rejected() {
        let _ = FaultPlan::new().with(0, FaultEvent::PoolSurge { extra: 1 });
    }

    #[test]
    fn churn_is_deterministic_and_consistent() {
        let model = ChurnModel {
            crash_prob: 0.05,
            recover_prob: 0.2,
            start_round: 1,
            rounds: 100,
            heal_at_end: true,
        };
        let plan_a = model.generate(64, &mut SimRng::seed_from(9));
        let plan_b = model.generate(64, &mut SimRng::seed_from(9));
        assert_eq!(plan_a, plan_b, "same seed, same plan");
        assert!(!plan_a.is_empty());

        // Replaying the plan's crash/recover events must keep a
        // consistent offline set: never crash an offline bin, never
        // recover an online one, and end fully healed.
        let mut offline = [false; 64];
        for (_, events) in plan_a.iter() {
            for event in events {
                match event {
                    FaultEvent::CrashBins { bins } => {
                        for &b in bins {
                            assert!(!offline[b], "bin {b} crashed twice");
                            offline[b] = true;
                        }
                    }
                    FaultEvent::RecoverBins { bins } => {
                        for &b in bins {
                            assert!(offline[b], "bin {b} recovered while online");
                            offline[b] = false;
                        }
                    }
                    other => panic!("churn emitted unexpected event {other:?}"),
                }
            }
        }
        assert!(offline.iter().all(|&o| !o), "heal_at_end leaves bins down");
    }

    #[test]
    fn recovery_report_measures_a_toy_outage() {
        // Crash the only serving capacity for a while: the pool grows
        // during the outage, then drains after recovery.
        let n = 4;
        let plan = FaultPlan::new()
            .with(
                1,
                FaultEvent::CrashBins {
                    bins: (0..n).collect(),
                },
            )
            .with(
                40,
                FaultEvent::RecoverBins {
                    bins: (0..n).collect(),
                },
            );
        let opts = RecoveryOptions {
            burnin: 50,
            baseline_window: 20,
            epsilon: 0.25,
            min_band: 2.0,
            stable_rounds: 10,
            max_rounds: 500,
        };
        let mut rng = SimRng::seed_from(11);
        let report = run_recovery(ToyProcess::new(n), plan, &opts, &mut rng);
        assert_eq!(report.fault_start, 51);
        assert_eq!(report.fault_end, 90);
        assert!(report.peak_pool >= 35, "outage must back up the pool");
        assert!(report.recovered(), "toy process drains after recovery");
        assert!(report.rounds_to_restabilize.unwrap() <= 100);
    }

    #[test]
    fn measure_recovery_is_reproducible_bit_exactly() {
        let build = |_i: usize, rng: &mut SimRng| {
            let mut churn_rng = rng.split();
            let model = ChurnModel {
                crash_prob: 0.3,
                recover_prob: 0.3,
                start_round: 1,
                rounds: 30,
                heal_at_end: true,
            };
            let plan = model.generate(4, &mut churn_rng);
            (ToyProcess::new(4), plan)
        };
        let opts = RecoveryOptions {
            burnin: 40,
            baseline_window: 20,
            epsilon: 0.5,
            min_band: 2.0,
            stable_rounds: 5,
            max_rounds: 300,
        };
        let a = measure_recovery(0xFEED, 6, &opts, build);
        let b = measure_recovery(0xFEED, 6, &opts, build);
        assert_eq!(a.reports, b.reports, "same master seed, same estimate");
        assert_eq!(a.replications, 6);
        assert_eq!(a.recovered, b.recovered);
        let c = measure_recovery(0xBEEF, 6, &opts, build);
        assert_ne!(
            a.reports, c.reports,
            "different master seed, different runs"
        );
    }

    #[test]
    #[should_panic(expected = "at least one fault event")]
    fn run_recovery_rejects_empty_plans() {
        let mut rng = SimRng::seed_from(1);
        let _ = run_recovery(
            ToyProcess::new(2),
            FaultPlan::new(),
            &RecoveryOptions::default(),
            &mut rng,
        );
    }
}
