//! Telemetry probes for fault injection and recovery measurement.
//!
//! Same pattern as the other crates' probes: handles registered once in
//! the global [`iba_obs`] registry, cached behind a `OnceLock`, gated by
//! [`probes`] at the cost of a single relaxed load when telemetry is
//! disabled. The recovery gauges use `record_max`, so they aggregate
//! correctly across the parallel replications of
//! [`measure_recovery`](crate::faults::measure_recovery).

use std::sync::{Arc, OnceLock};

use iba_obs::{global, Counter, Gauge, Histogram};

/// The sim crate's registered metrics.
#[derive(Debug)]
pub(crate) struct SimProbes {
    /// Bins taken offline by `CrashBins` events, lifetime.
    pub crashed_bins: Arc<Counter>,
    /// Bins brought back by `RecoverBins` events, lifetime.
    pub recovered_bins: Arc<Counter>,
    /// Bins whose capacity a `DegradeCapacity` event changed, lifetime.
    pub degraded_bins: Arc<Counter>,
    /// `ArrivalBurst` events that started, lifetime.
    pub bursts: Arc<Counter>,
    /// Balls injected by `PoolSurge` events and active bursts, lifetime.
    pub surge_balls: Arc<Counter>,
    /// Completed `run_recovery` measurements, lifetime.
    pub recovery_runs: Arc<Counter>,
    /// Recovery runs whose pool never re-entered the baseline band.
    pub recovery_unrecovered: Arc<Counter>,
    /// Rounds-to-restabilize of recovered runs.
    pub recovery_rounds: Arc<Histogram>,
    /// Largest peak pool size any recovery run observed.
    pub recovery_peak_pool: Arc<Gauge>,
    /// Largest peak backlog (pool + buffered) any recovery run observed.
    pub recovery_peak_backlog: Arc<Gauge>,
}

impl SimProbes {
    fn register() -> Self {
        let r = global();
        SimProbes {
            crashed_bins: r.counter("iba_sim_fault_crashed_bins_total"),
            recovered_bins: r.counter("iba_sim_fault_recovered_bins_total"),
            degraded_bins: r.counter("iba_sim_fault_degraded_bins_total"),
            bursts: r.counter("iba_sim_fault_bursts_total"),
            surge_balls: r.counter("iba_sim_fault_surge_balls_total"),
            recovery_runs: r.counter("iba_sim_recovery_runs_total"),
            recovery_unrecovered: r.counter("iba_sim_recovery_unrecovered_total"),
            recovery_rounds: r.histogram("iba_sim_recovery_rounds"),
            recovery_peak_pool: r.gauge("iba_sim_recovery_peak_pool"),
            recovery_peak_backlog: r.gauge("iba_sim_recovery_peak_backlog"),
        }
    }
}

/// The probe gate: `None` (after one relaxed load) while telemetry is
/// disabled, the cached handles otherwise.
#[inline]
pub(crate) fn probes() -> Option<&'static SimProbes> {
    if !iba_obs::enabled() {
        return None;
    }
    static PROBES: OnceLock<SimProbes> = OnceLock::new();
    Some(PROBES.get_or_init(SimProbes::register))
}
