//! Terminal (ASCII) plots for simulation output.
//!
//! The figure harness and the examples render small line charts directly
//! in the terminal — enough to *see* the shapes the paper plots (1/c decay,
//! the waiting-time minimum, recovery transients) without leaving the
//! console. Not a plotting library: fixed-size character canvas, multiple
//! labeled series, automatic axis scaling.

use std::fmt::Write as _;

/// A labeled data series: `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.to_string(),
            points,
        }
    }

    /// Creates a series from y-values indexed 0, 1, 2, …
    pub fn from_values(label: &str, values: &[f64]) -> Self {
        Series {
            label: label.to_string(),
            points: values
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64, y))
                .collect(),
        }
    }
}

/// An ASCII chart: a character canvas with axes, one marker per series.
///
/// # Examples
///
/// ```
/// use iba_sim::plot::{Chart, Series};
/// let s = Series::from_values("pool", &[1.0, 2.0, 4.0, 8.0]);
/// let text = Chart::new("growth", 40, 10).with_series(s).render();
/// assert!(text.contains("growth"));
/// assert!(text.contains("pool"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

const MARKERS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

impl Chart {
    /// Creates an empty chart with a plotting canvas of `width × height`
    /// characters (clamped to at least 8 × 4).
    pub fn new(title: &str, width: usize, height: usize) -> Self {
        Chart {
            title: title.to_string(),
            width: width.max(8),
            height: height.max(4),
            series: Vec::new(),
        }
    }

    /// Adds a series; returns `self` for chaining. Series beyond the six
    /// available markers reuse markers cyclically.
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders the chart. Empty charts (no series or no points) render a
    /// placeholder note instead of axes.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return format!("[{}: no data]\n", self.title);
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if x_max == x_min {
            x_max = x_min + 1.0;
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }

        let mut canvas = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                canvas[row][cx] = marker;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let y_label_width = 10;
        for (row, line) in canvas.iter().enumerate() {
            let y_at_row = y_max - (y_max - y_min) * row as f64 / (self.height - 1) as f64;
            let label = if row == 0 || row == self.height - 1 || row == self.height / 2 {
                format!("{y_at_row:>9.3} ")
            } else {
                " ".repeat(y_label_width)
            };
            let _ = writeln!(out, "{label}|{}", line.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "{}+{}",
            " ".repeat(y_label_width),
            "-".repeat(self.width)
        );
        let _ = writeln!(
            out,
            "{}{:<.3} .. {:.3}",
            " ".repeat(y_label_width + 1),
            x_min,
            x_max
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", MARKERS[si % MARKERS.len()], s.label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = Chart::new("empty", 20, 5);
        assert_eq!(c.render(), "[empty: no data]\n");
        let c = Chart::new("empty", 20, 5).with_series(Series::new("s", vec![]));
        assert!(c.render().contains("no data"));
    }

    #[test]
    fn single_point_renders() {
        let c = Chart::new("dot", 20, 5).with_series(Series::new("s", vec![(1.0, 1.0)]));
        let text = c.render();
        assert!(text.contains('*'));
        assert!(text.contains("s"));
    }

    #[test]
    fn rising_series_fills_diagonal() {
        let s = Series::from_values("line", &[0.0, 1.0, 2.0, 3.0]);
        let text = Chart::new("diag", 16, 8).with_series(s).render();
        let rows: Vec<&str> = text.lines().collect();
        // The maximum must appear in the top canvas row, the minimum at
        // the bottom.
        assert!(rows[1].contains('*'), "top row: {}", rows[1]);
        assert!(rows[8].contains('*'), "bottom row: {}", rows[8]);
    }

    #[test]
    fn multiple_series_use_distinct_markers() {
        let a = Series::from_values("a", &[0.0, 1.0]);
        let b = Series::from_values("b", &[1.0, 0.0]);
        let text = Chart::new("two", 16, 6)
            .with_series(a)
            .with_series(b)
            .render();
        assert!(text.contains('*'));
        assert!(text.contains('+'));
        assert!(text.contains("a") && text.contains("b"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series::from_values("flat", &[5.0, 5.0, 5.0]);
        let text = Chart::new("flat", 12, 4).with_series(s).render();
        assert!(text.contains('*'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let s = Series::new(
            "nan",
            vec![(0.0, f64::NAN), (1.0, 2.0), (f64::INFINITY, 3.0)],
        );
        let text = Chart::new("nan", 12, 4).with_series(s).render();
        assert!(text.contains('*')); // only the finite point plots
    }

    #[test]
    fn tiny_dimensions_are_clamped() {
        let s = Series::from_values("s", &[1.0, 2.0]);
        let text = Chart::new("tiny", 1, 1).with_series(s).render();
        assert!(text.lines().count() >= 5);
    }
}
