//! Deterministic pseudo-random number generation for simulations.
//!
//! Every simulation in this workspace is a pure function of `(config, seed)`.
//! To guarantee that across platforms and `rand` versions, we implement the
//! generators ourselves:
//!
//! - [`SplitMix64`] — a tiny, well-distributed generator used for seeding and
//!   for splitting one master seed into independent per-replication streams.
//! - [`Xoshiro256PlusPlus`] — the workhorse generator (Blackman & Vigna,
//!   2019 public-domain algorithm, re-implemented from the specification).
//! - [`SimRng`] — the façade used throughout the workspace, wrapping
//!   xoshiro256++ with the sampling helpers the processes need
//!   (uniform bins via Lemire rejection, Bernoulli, unit-interval doubles).
//!
//! Both generators also implement `rand_core::RngCore` (via the `rand`
//! re-export) so they can be plugged into external samplers where needed.

use std::fmt;

/// SplitMix64 generator (Steele, Lea & Flood).
///
/// Used for seed expansion and stream splitting: consecutive outputs of a
/// SplitMix64 seeded with a master seed are statistically independent enough
/// to seed independent simulation streams, and this is the seeding procedure
/// recommended by the xoshiro authors.
///
/// # Examples
///
/// ```
/// use iba_sim::rng::SplitMix64;
/// let mut sm = SplitMix64::new(0);
/// // Reference value from the public-domain C implementation.
/// assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 generator (Blackman & Vigna).
///
/// Fast, high-quality, 256-bit state, period 2²⁵⁶ − 1. This is the generator
/// that drives all ball placements; it is deterministic per seed across
/// platforms.
///
/// # Examples
///
/// ```
/// use iba_sim::rng::Xoshiro256PlusPlus;
/// let mut a = Xoshiro256PlusPlus::seed_from(7);
/// let mut b = Xoshiro256PlusPlus::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl fmt::Debug for Xoshiro256PlusPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Xoshiro256PlusPlus")
            .field("s", &self.s)
            .finish()
    }
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from raw 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one forbidden state of the
    /// xoshiro family).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Self { s }
    }

    /// Seeds the generator by expanding a 64-bit seed through [`SplitMix64`],
    /// the procedure recommended by the algorithm's authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 output is never all-zero across four consecutive draws
        // for any seed, so `from_state` cannot panic here.
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Jump function: advances the stream by 2¹²⁸ steps, producing a
    /// non-overlapping substream. Useful for coarse-grained parallelism.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180ec6d33cfd0aba,
            0xd5a61266f0c9392c,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl rand::RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// The simulation RNG façade used by every process in this workspace.
///
/// Wraps [`Xoshiro256PlusPlus`] and provides the small set of sampling
/// operations the allocation processes actually use. All sampling is exact
/// (no floating-point modulo bias): uniform integers use Lemire's rejection
/// method.
///
/// # Examples
///
/// ```
/// use iba_sim::rng::SimRng;
/// let mut rng = SimRng::seed_from(1);
/// let bin = rng.uniform_below(10);
/// assert!(bin < 10);
/// let p = rng.unit_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: Xoshiro256PlusPlus::seed_from(seed),
        }
    }

    /// Creates an RNG from raw xoshiro state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros.
    pub fn from_state(state: [u64; 4]) -> Self {
        Self {
            inner: Xoshiro256PlusPlus::from_state(state),
        }
    }

    /// The raw 256-bit generator state (for checkpointing; feed back into
    /// [`SimRng::from_state`] to resume the stream bit-exactly).
    pub fn state(&self) -> [u64; 4] {
        self.inner.s
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Samples an integer uniformly from `0..bound` using Lemire's
    /// multiply-with-rejection method (exactly uniform, no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn uniform_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_below requires a positive bound");
        // Lemire 2019: multiply a 64-bit draw by the bound; the high word is
        // the candidate. Reject the small biased fraction of the low word.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Samples a bin index uniformly from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn uniform_bin(&mut self, n: usize) -> usize {
        self.uniform_below(n as u64) as usize
    }

    /// Fills `out` with bin indices sampled uniformly from `0..n`, one per
    /// slot — the bulk counterpart of calling [`uniform_bin`](Self::uniform_bin)
    /// `out.len()` times.
    ///
    /// The bulk path is **consumption-identical** to the per-call path: it
    /// draws exactly the same raw 64-bit outputs in the same order (including
    /// Lemire rejection re-draws), so interleaving bulk and scalar sampling
    /// on two clones of the same generator yields bit-identical streams.
    /// This is what lets the flat-arena round kernel pre-draw all of a
    /// round's bin choices without perturbing any seeded trajectory.
    ///
    /// Power-of-two `n` never rejects (the Lemire threshold is zero), so that
    /// case takes a branch-free shift path with provably identical output.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 2³²` (bin indices must fit in `u32`).
    ///
    /// # Examples
    ///
    /// ```
    /// use iba_sim::rng::SimRng;
    /// let mut bulk = SimRng::seed_from(9);
    /// let mut scalar = SimRng::seed_from(9);
    /// let mut out = [0u32; 32];
    /// bulk.fill_uniform_bins(10, &mut out);
    /// for &v in &out {
    ///     assert_eq!(v as usize, scalar.uniform_bin(10));
    /// }
    /// assert_eq!(bulk.state(), scalar.state());
    /// ```
    pub fn fill_uniform_bins(&mut self, n: usize, out: &mut [u32]) {
        assert!(n > 0, "fill_uniform_bins requires a positive bin count");
        assert!(
            n as u64 <= 1 << 32,
            "fill_uniform_bins bin indices must fit in u32 (n = {n})"
        );
        let bound = n as u64;
        if bound.is_power_of_two() {
            // threshold = (-2^k) mod 2^k = 0: the rejection loop can never
            // run, and the candidate high word reduces to a shift.
            let k = bound.trailing_zeros();
            if k == 0 {
                // n = 1: uniform_below still consumes one draw per call.
                for slot in out {
                    self.next_u64();
                    *slot = 0;
                }
            } else {
                let shift = 64 - k;
                for slot in out {
                    *slot = (self.next_u64() >> shift) as u32;
                }
            }
            return;
        }
        // Exact replica of `uniform_below`'s Lemire loop; hoisting the
        // threshold out of the loop changes no draw (it is a pure function
        // of `bound`).
        let threshold = bound.wrapping_neg() % bound;
        for slot in out {
            let mut m = (self.next_u64() as u128) * (bound as u128);
            let mut lo = m as u64;
            if lo < bound {
                while lo < threshold {
                    m = (self.next_u64() as u128) * (bound as u128);
                    lo = m as u64;
                }
            }
            *slot = (m >> 64) as u32;
        }
    }

    /// Samples a double uniformly from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // Standard 53-bit conversion: take the top 53 bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a Bernoulli trial with success probability `p`.
    ///
    /// Values of `p <= 0` always fail; values `>= 1` always succeed.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.unit_f64() < p
    }

    /// Splits off an independent child RNG.
    ///
    /// The child is seeded from the next output of this generator passed
    /// through SplitMix64, so parent and child streams are decorrelated.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Creates `count` decorrelated RNGs from a master seed, one per
    /// replication. Deterministic: the same master seed always yields the
    /// same family of streams.
    pub fn family(master_seed: u64, count: usize) -> Vec<SimRng> {
        let mut sm = SplitMix64::new(master_seed);
        (0..count)
            .map(|_| SimRng::seed_from(sm.next_u64()))
            .collect()
    }
}

impl rand::RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.inner.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        rand::RngCore::fill_bytes(&mut self.inner, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 0, from the reference C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(sm.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(sm.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn splitmix_seed_1234567_vector() {
        let mut sm = SplitMix64::new(1234567);
        // Deterministic regression pin (self-generated, stable forever).
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_ne!(first, sm2.next_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: seeding xoshiro256++ with SplitMix64(0) state and taking
        // outputs must match the algorithm run by hand. We pin the state
        // produced by the seeding path and the first outputs as a regression
        // anchor (values verified once against an independent implementation).
        let mut x = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        // Computed from the reference C implementation of xoshiro256++ with
        // state {1, 2, 3, 4}:
        assert_eq!(x.next_u64(), 41943041);
        assert_eq!(x.next_u64(), 58720359);
        assert_eq!(x.next_u64(), 3588806011781223);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn xoshiro_rejects_zero_state() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn xoshiro_jump_changes_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from(99);
        let mut b = a.clone();
        b.jump();
        let head_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let head_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(head_a, head_b);
    }

    #[test]
    fn uniform_below_is_in_range() {
        let mut rng = SimRng::seed_from(3);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.uniform_below(bound) < bound);
            }
        }
    }

    #[test]
    fn uniform_below_bound_one_is_zero() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..10 {
            assert_eq!(rng.uniform_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn uniform_below_zero_panics() {
        SimRng::seed_from(0).uniform_below(0);
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(5);
        let bound = 10u64;
        let trials = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..trials {
            counts[rng.uniform_below(bound) as usize] += 1;
        }
        let expected = trials as f64 / bound as f64;
        for &c in &counts {
            // 5-sigma band for a binomial with p = 1/10.
            let sigma = (trials as f64 * 0.1 * 0.9).sqrt();
            assert!(
                (c as f64 - expected).abs() < 5.0 * sigma,
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn fill_uniform_bins_matches_scalar_draws() {
        // Power-of-two, small odd, large non-power-of-two, and n = 1.
        for n in [1usize, 2, 3, 7, 10, 64, 1000, 1 << 20, (1 << 20) + 17] {
            let mut bulk = SimRng::seed_from(4242);
            let mut scalar = SimRng::seed_from(4242);
            let mut out = vec![0u32; 257];
            bulk.fill_uniform_bins(n, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v as usize, scalar.uniform_bin(n), "n={n} draw {i}");
            }
            assert_eq!(bulk.state(), scalar.state(), "n={n} consumption diverged");
        }
    }

    #[test]
    fn fill_uniform_bins_supports_the_full_u32_range() {
        let n = 1usize << 32;
        let mut bulk = SimRng::seed_from(5);
        let mut scalar = SimRng::seed_from(5);
        let mut out = [0u32; 16];
        bulk.fill_uniform_bins(n, &mut out);
        for &v in &out {
            assert_eq!(v as usize, scalar.uniform_bin(n));
        }
        assert_eq!(bulk.state(), scalar.state());
    }

    #[test]
    #[should_panic(expected = "positive bin count")]
    fn fill_uniform_bins_zero_panics() {
        SimRng::seed_from(0).fill_uniform_bins(0, &mut [0u32; 1]);
    }

    #[test]
    #[should_panic(expected = "must fit in u32")]
    fn fill_uniform_bins_oversized_bound_panics() {
        SimRng::seed_from(0).fill_uniform_bins((1usize << 32) + 1, &mut [0u32; 1]);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = SimRng::seed_from(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.unit_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SimRng::seed_from(8);
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(2.0));
        assert!(!rng.bernoulli(0.0));
        assert!(!rng.bernoulli(-1.0));
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = SimRng::seed_from(9);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn split_streams_are_decorrelated_and_deterministic() {
        let mut parent1 = SimRng::seed_from(10);
        let mut parent2 = SimRng::seed_from(10);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        // Same parent seed => same child stream.
        let h1: Vec<u64> = (0..4).map(|_| c1.next_u64()).collect();
        let h2: Vec<u64> = (0..4).map(|_| c2.next_u64()).collect();
        assert_eq!(h1, h2);
        // Child stream differs from the parent continuation.
        let p: Vec<u64> = (0..4).map(|_| parent1.next_u64()).collect();
        assert_ne!(h1, p);
    }

    #[test]
    fn family_is_deterministic_and_pairwise_distinct() {
        let fam1 = SimRng::family(77, 8);
        let fam2 = SimRng::family(77, 8);
        assert_eq!(fam1.len(), 8);
        for (a, b) in fam1.iter().zip(&fam2) {
            assert_eq!(a, b);
        }
        for i in 0..fam1.len() {
            for j in (i + 1)..fam1.len() {
                assert_ne!(fam1[i], fam1[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn rngcore_fill_bytes_covers_partial_chunks() {
        use rand::RngCore;
        let mut rng = SimRng::seed_from(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
