//! Ball arrival models.
//!
//! Section II of the paper fixes the arrival model to a deterministic batch
//! of `λn` new balls per round (with `λn ∈ ℕ`). Footnote 2 remarks that the
//! results can be adjusted to a *probabilistic* generation process with `n`
//! generators and expected injection rate `λ`; related work (Mitzenmacher)
//! uses Poisson streams of rate `λn`. All three are provided here so the
//! benchmark harness can run the arrival-model ablation (experiment id
//! `ABL-arr` in DESIGN.md).

use crate::error::ConfigError;
use crate::rng::SimRng;

/// How many new balls arrive at the beginning of each round.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalModel {
    /// Exactly `batch` new balls per round — the paper's model
    /// (`batch = λn`).
    Deterministic {
        /// Number of balls generated every round.
        batch: u64,
    },
    /// Each of `generators` independent generators produces a ball with
    /// probability `p`, so the batch is Binomial(`generators`, `p`) with mean
    /// `generators · p` — the paper's footnote-2 variant with `generators = n`
    /// and `p = λ`.
    Bernoulli {
        /// Number of independent generators.
        generators: u64,
        /// Per-generator, per-round generation probability.
        p: f64,
    },
    /// Poisson(`mean`) arrivals per round — the Mitzenmacher-style stream
    /// with `mean = λn`.
    Poisson {
        /// Expected number of arrivals per round.
        mean: f64,
    },
}

impl ArrivalModel {
    /// Builds the paper's deterministic model from `(n, λ)`, validating the
    /// Section-II constraints: `0 ≤ λ ≤ 1 − 1/n` and `λn ∈ ℕ`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidRate`] if `λ` is outside
    /// `[0, 1 − 1/n]` and [`ConfigError::NonIntegralArrivals`] if `λn` is not
    /// an integer (up to floating-point tolerance of 10⁻⁹).
    ///
    /// # Examples
    ///
    /// ```
    /// use iba_sim::arrivals::ArrivalModel;
    /// let m = ArrivalModel::deterministic_rate(1024, 0.75)?;
    /// assert_eq!(m.mean(), 768.0);
    /// # Ok::<(), iba_sim::error::ConfigError>(())
    /// ```
    pub fn deterministic_rate(n: usize, lambda: f64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroBins);
        }
        if !(0.0..=1.0).contains(&lambda) || lambda > 1.0 - 1.0 / n as f64 + 1e-12 {
            return Err(ConfigError::InvalidRate {
                lambda,
                constraint: "0 <= lambda <= 1 - 1/n",
            });
        }
        let batch_f = lambda * n as f64;
        let batch = batch_f.round();
        if (batch_f - batch).abs() > 1e-9 {
            return Err(ConfigError::NonIntegralArrivals { lambda, bins: n });
        }
        Ok(ArrivalModel::Deterministic {
            batch: batch as u64,
        })
    }

    /// Builds the footnote-2 probabilistic model: `n` generators each
    /// producing a ball with probability `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidRate`] if `λ ∉ [0, 1]` and
    /// [`ConfigError::ZeroBins`] if `n = 0`.
    pub fn bernoulli_rate(n: usize, lambda: f64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroBins);
        }
        if !(0.0..=1.0).contains(&lambda) {
            return Err(ConfigError::InvalidRate {
                lambda,
                constraint: "0 <= lambda <= 1",
            });
        }
        Ok(ArrivalModel::Bernoulli {
            generators: n as u64,
            p: lambda,
        })
    }

    /// Builds a Poisson stream with per-round mean `λn`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidRate`] if `λ < 0` and
    /// [`ConfigError::ZeroBins`] if `n = 0`.
    pub fn poisson_rate(n: usize, lambda: f64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroBins);
        }
        if lambda < 0.0 {
            return Err(ConfigError::InvalidRate {
                lambda,
                constraint: "lambda >= 0",
            });
        }
        Ok(ArrivalModel::Poisson {
            mean: lambda * n as f64,
        })
    }

    /// Expected number of arrivals per round.
    pub fn mean(&self) -> f64 {
        match self {
            ArrivalModel::Deterministic { batch } => *batch as f64,
            ArrivalModel::Bernoulli { generators, p } => *generators as f64 * p,
            ArrivalModel::Poisson { mean } => *mean,
        }
    }

    /// Samples the number of arrivals for one round.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match self {
            ArrivalModel::Deterministic { batch } => *batch,
            ArrivalModel::Bernoulli { generators, p } => sample_binomial(rng, *generators, *p),
            ArrivalModel::Poisson { mean } => sample_poisson(rng, *mean),
        }
    }

    /// Serializes the model into a checkpoint encoder.
    pub fn encode_into(&self, enc: &mut crate::codec::Encoder) {
        match self {
            ArrivalModel::Deterministic { batch } => {
                enc.u32(0);
                enc.u64(*batch);
            }
            ArrivalModel::Bernoulli { generators, p } => {
                enc.u32(1);
                enc.u64(*generators);
                enc.f64(*p);
            }
            ArrivalModel::Poisson { mean } => {
                enc.u32(2);
                enc.f64(*mean);
            }
        }
    }

    /// Deserializes a model from a checkpoint decoder.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::codec::CodecError`] on truncated or malformed
    /// input.
    pub fn decode_from(
        dec: &mut crate::codec::Decoder<'_>,
    ) -> Result<Self, crate::codec::CodecError> {
        match dec.u32("arrival model tag")? {
            0 => Ok(ArrivalModel::Deterministic {
                batch: dec.u64("deterministic batch")?,
            }),
            1 => Ok(ArrivalModel::Bernoulli {
                generators: dec.u64("bernoulli generators")?,
                p: dec.f64("bernoulli p")?,
            }),
            2 => Ok(ArrivalModel::Poisson {
                mean: dec.f64("poisson mean")?,
            }),
            _ => Err(crate::codec::CodecError::Invalid {
                what: "arrival model tag",
            }),
        }
    }
}

/// Samples Binomial(n, p) by simulating the `n` generators directly.
///
/// O(n) per call — faithful to the footnote-2 model ("n generators") and fast
/// enough because it is called once per round, while ball placement costs
/// Θ(pool size) anyway.
fn sample_binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mut hits = 0;
    for _ in 0..n {
        if rng.unit_f64() < p {
            hits += 1;
        }
    }
    hits
}

/// Samples Poisson(mean) via Knuth's product-of-uniforms method, splitting
/// large means into chunks of at most 500 to avoid `exp(-mean)` underflow
/// (Poisson is additive, so a sum of independent Poisson chunks is exact).
fn sample_poisson(rng: &mut SimRng, mean: f64) -> u64 {
    const CHUNK: f64 = 500.0;
    let mut remaining = mean;
    let mut total = 0u64;
    while remaining > 0.0 {
        let mu = remaining.min(CHUNK);
        remaining -= mu;
        let limit = (-mu).exp();
        let mut k = 0u64;
        let mut prod = 1.0;
        loop {
            prod *= rng.unit_f64();
            if prod <= limit {
                break;
            }
            k += 1;
        }
        total += k;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rate_validates_integrality() {
        assert!(ArrivalModel::deterministic_rate(10, 0.35).is_err());
        let m = ArrivalModel::deterministic_rate(10, 0.3).unwrap();
        assert_eq!(m, ArrivalModel::Deterministic { batch: 3 });
    }

    #[test]
    fn deterministic_rate_rejects_out_of_range() {
        assert!(ArrivalModel::deterministic_rate(10, -0.1).is_err());
        assert!(ArrivalModel::deterministic_rate(10, 0.95).is_err()); // > 1 - 1/10
        assert!(ArrivalModel::deterministic_rate(0, 0.5).is_err());
    }

    #[test]
    fn deterministic_rate_accepts_boundary() {
        // λ = 1 - 1/n is explicitly allowed by Theorems 1 and 2.
        let m = ArrivalModel::deterministic_rate(16, 1.0 - 1.0 / 16.0).unwrap();
        assert_eq!(m, ArrivalModel::Deterministic { batch: 15 });
        let zero = ArrivalModel::deterministic_rate(16, 0.0).unwrap();
        assert_eq!(zero.mean(), 0.0);
    }

    #[test]
    fn deterministic_sample_is_constant() {
        let m = ArrivalModel::Deterministic { batch: 42 };
        let mut rng = SimRng::seed_from(0);
        for _ in 0..5 {
            assert_eq!(m.sample(&mut rng), 42);
        }
    }

    #[test]
    fn bernoulli_mean_matches() {
        let m = ArrivalModel::bernoulli_rate(1000, 0.25).unwrap();
        assert_eq!(m.mean(), 250.0);
        let mut rng = SimRng::seed_from(1);
        let rounds = 2000;
        let total: u64 = (0..rounds).map(|_| m.sample(&mut rng)).sum();
        let avg = total as f64 / rounds as f64;
        assert!((avg - 250.0).abs() < 5.0, "avg {avg}");
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = SimRng::seed_from(2);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn bernoulli_rejects_bad_rate() {
        assert!(ArrivalModel::bernoulli_rate(10, 1.5).is_err());
        assert!(ArrivalModel::bernoulli_rate(0, 0.5).is_err());
    }

    #[test]
    fn poisson_mean_and_variance_match() {
        let m = ArrivalModel::poisson_rate(100, 0.9).unwrap(); // mean 90
        let mut rng = SimRng::seed_from(3);
        let rounds = 5000;
        let samples: Vec<u64> = (0..rounds).map(|_| m.sample(&mut rng)).collect();
        let avg = samples.iter().sum::<u64>() as f64 / rounds as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - avg).powi(2))
            .sum::<f64>()
            / rounds as f64;
        assert!((avg - 90.0).abs() < 1.5, "mean {avg}");
        assert!((var - 90.0).abs() < 10.0, "variance {var}");
    }

    #[test]
    fn poisson_large_mean_does_not_underflow() {
        // mean far above the 500-chunk threshold
        let mut rng = SimRng::seed_from(4);
        let mean = 30_000.0;
        let s = sample_poisson(&mut rng, mean);
        assert!((s as f64 - mean).abs() < 6.0 * mean.sqrt(), "sample {s}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = SimRng::seed_from(5);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_rejects_negative() {
        assert!(ArrivalModel::poisson_rate(10, -0.5).is_err());
    }
}
