//! Discrete-event simulation substrate.
//!
//! The paper's model is round-synchronous, but real request systems are
//! asynchronous. The continuous-time variant of CAPPED
//! (`iba_core::continuous`) runs on this event engine: a time-ordered
//! event queue plus exponential inter-event sampling.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fire time plus payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue (earliest event first; FIFO among equal
/// times via a sequence number, so execution is fully deterministic).
///
/// # Examples
///
/// ```
/// use iba_sim::events::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to fire at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Fire time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Samples an exponential inter-event time with the given `rate`
/// (mean `1/rate`) by inversion.
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn sample_exponential(rng: &mut crate::rng::SimRng, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    // unit_f64 ∈ [0, 1); 1 − u ∈ (0, 1] keeps ln finite.
    -(1.0 - rng.unit_f64()).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as u64);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(2.5, ());
        q.schedule(1.5, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from(1);
        let rate = 2.5;
        let n = 100_000;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1_000 {
            assert!(sample_exponential(&mut rng, 1.0) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        sample_exponential(&mut SimRng::seed_from(0), 0.0);
    }
}
