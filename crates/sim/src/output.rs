//! Plain-text tables, CSV and JSON-lines emission for experiment results.
//!
//! The figure harness prints every regenerated series both as an aligned
//! text table (for the terminal / EXPERIMENTS.md) and as CSV (for external
//! plotting); sweeps can additionally emit one JSON object per row
//! ([`Table::to_jsonl`]) through the workspace's shared writer in
//! [`iba_obs::json`]. CSV is hand-rolled because `serde` alone cannot
//! serialize to a text format and `serde_json`/`csv` are not in the
//! approved dependency set; JSON goes through `iba-obs` so escaping and
//! the `schema` version stamp are implemented exactly once.

use std::fmt::Write as _;

use iba_obs::json::JsonObjWriter;

/// A cell value in a result table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text cell.
    Text(String),
    /// Integer cell.
    Int(i64),
    /// Unsigned integer cell.
    Uint(u64),
    /// Floating-point cell, rendered with 4 significant decimals.
    Float(f64),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Uint(v) => v.to_string(),
            Cell::Float(v) => {
                if v.is_finite() {
                    format!("{v:.4}")
                } else {
                    v.to_string()
                }
            }
        }
    }

    fn render_csv(&self) -> String {
        match self {
            Cell::Text(s) => escape_csv(s),
            Cell::Int(v) => v.to_string(),
            Cell::Uint(v) => v.to_string(),
            Cell::Float(v) => format!("{v}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Uint(v)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Uint(v as u64)
    }
}

/// Escapes a CSV field per RFC 4180 (quote when the field contains commas,
/// quotes or newlines; double embedded quotes).
fn escape_csv(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// A result table with a title, column headers and rows.
///
/// # Examples
///
/// ```
/// use iba_sim::output::Table;
/// let mut t = Table::new("demo", &["c", "pool/n"]);
/// t.row(vec![1u64.into(), 2.5f64.into()]);
/// let text = t.render();
/// assert!(text.contains("pool/n"));
/// assert!(text.contains("2.5000"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("c,pool/n\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let head: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", head.join("  "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", rule.join("  "));
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as a GitHub-flavored Markdown table (used when
    /// pasting experiment results into EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render).collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Renders the table as JSON lines: one object per row, keyed by
    /// column header, stamped with the shared `schema` version and the
    /// table title (no trailing newline).
    ///
    /// # Examples
    ///
    /// ```
    /// use iba_sim::output::Table;
    /// let mut t = Table::new("demo", &["c", "pool/n"]);
    /// t.row(vec![1u64.into(), 2.5f64.into()]);
    /// assert_eq!(
    ///     t.to_jsonl(),
    ///     "{\"schema\":1,\"table\":\"demo\",\"c\":1,\"pool/n\":2.5}"
    /// );
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut lines = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut w = JsonObjWriter::with_schema();
            w.field_str("table", &self.title);
            for (header, cell) in self.headers.iter().zip(row) {
                match cell {
                    Cell::Text(s) => w.field_str(header, s),
                    Cell::Int(v) => w.field_i64(header, *v),
                    Cell::Uint(v) => w.field_u64(header, *v),
                    Cell::Float(v) => w.field_f64(header, *v),
                }
            }
            lines.push(w.finish());
        }
        lines.join("\n")
    }

    /// Renders the table as RFC-4180 CSV (headers + rows, no title).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape_csv(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter()
                    .map(Cell::render_csv)
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        let mut t = Table::new("pool size", &["lambda", "c", "pool/n"]);
        t.row(vec!["0.75".into(), 1u64.into(), 2.3861f64.into()]);
        t.row(vec!["0.75".into(), 2u64.into(), 1.6910f64.into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = demo().render();
        assert!(text.starts_with("# pool size\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, two rows
                                    // All data lines have the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_roundtrip_basics() {
        let csv = demo().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "lambda,c,pool/n");
        assert_eq!(lines[1], "0.75,1,2.3861");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn markdown_renders_header_rule_and_rows() {
        let md = demo().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| lambda | c | pool/n |");
        assert_eq!(lines[1], "|---|---|---|");
        assert!(lines[2].starts_with("| 0.75 | 1 |"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn jsonl_rows_parse_with_schema_stamp() {
        let mut t = Table::new("weird \"title\"", &["name", "v"]);
        t.row(vec!["a,b\"c".into(), 1.5f64.into()]);
        t.row(vec!["plain".into(), f64::INFINITY.into()]);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = iba_obs::json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("schema").and_then(|v| v.as_u64()),
            Some(iba_obs::json::SCHEMA_VERSION)
        );
        assert_eq!(
            first.get("table").and_then(|v| v.as_str()),
            Some("weird \"title\"")
        );
        assert_eq!(first.get("name").and_then(|v| v.as_str()), Some("a,b\"c"));
        assert_eq!(first.get("v").and_then(|v| v.as_f64()), Some(1.5));
        // Non-finite floats degrade to null rather than invalid JSON.
        let second = iba_obs::json::parse(lines[1]).unwrap();
        assert_eq!(second.get("v"), Some(&iba_obs::json::JsonValue::Null));
    }

    #[test]
    fn jsonl_empty_table_is_empty_string() {
        assert_eq!(Table::new("empty", &["a"]).to_jsonl(), "");
    }

    #[test]
    fn csv_escapes_special_characters() {
        let mut t = Table::new("x", &["name"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec![1u64.into()]);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from(3usize), Cell::Uint(3));
        assert_eq!(Cell::from(-4i64), Cell::Int(-4));
        assert_eq!(Cell::from("x"), Cell::Text("x".into()));
        assert_eq!(Cell::from(String::from("y")), Cell::Text("y".into()));
    }

    #[test]
    fn float_rendering() {
        assert_eq!(Cell::Float(1.0).render(), "1.0000");
        assert_eq!(Cell::Float(f64::INFINITY).render(), "inf");
        // CSV keeps full precision.
        assert_eq!(Cell::Float(0.1).render_csv(), "0.1");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.title(), "empty");
        assert!(t.render().contains("empty"));
    }
}
