//! Simulation substrate for infinite parallel balls-into-bins processes.
//!
//! This crate provides everything *around* an allocation process that is
//! needed to reproduce the evaluation of *"Infinite Balanced Allocation via
//! Finite Capacities"* (Berenbrink et al., ICDCS 2021):
//!
//! - [`rng`] — a deterministic, fast pseudo-random number generator
//!   (xoshiro256++ seeded via SplitMix64) together with an exactly-uniform
//!   bin sampler and seed-splitting for reproducible multi-threaded runs.
//! - [`process`] — the [`process::AllocationProcess`]
//!   trait which every simulated process (CAPPED, MODCAPPED, GREEDY\[d\],
//!   THRESHOLD\[T\]) implements, and the per-round [`RoundReport`]
//!   (process::RoundReport) it produces.
//! - [`arrivals`] — ball arrival models: the paper's deterministic `λn`
//!   batch, the probabilistic per-generator Bernoulli variant from the
//!   paper's footnote 2, and a Poisson stream.
//! - [`stats`] — running summaries, histograms, quantiles, time series and
//!   regression utilities used by the measurement harness.
//! - [`burnin`] — fixed and adaptive burn-in policies that decide when a
//!   simulated system has reached its stationary regime.
//! - [`engine`] — the round-driving [`engine::Simulation`] and
//!   the [`Observer`](engine::Observer) abstraction for metric collection.
//! - [`runner`] — multi-seed replication with aggregation across seeds.
//! - [`output`] — plain-text tables and CSV emission for experiment results.
//! - [`plot`] — ASCII line charts for terminal visualization.
//! - [`events`] — a discrete-event (continuous-time) simulation substrate.
//! - [`codec`] — a versioned binary codec for simulation checkpoints.
//! - [`faults`] — deterministic fault injection ([`faults::FaultPlan`],
//!   [`faults::FaultedProcess`]) and recovery measurement
//!   ([`faults::RecoveryReport`]).
//!
//! # Quick example
//!
//! Processes implement [`process::AllocationProcess`]; the engine drives any
//! of them. A trivial process that allocates nothing:
//!
//! ```
//! use iba_sim::process::{AllocationProcess, RoundReport};
//! use iba_sim::rng::SimRng;
//! use iba_sim::engine::Simulation;
//!
//! struct Idle { round: u64 }
//!
//! impl AllocationProcess for Idle {
//!     fn bins(&self) -> usize { 8 }
//!     fn round(&self) -> u64 { self.round }
//!     fn pool_size(&self) -> usize { 0 }
//!     fn step(&mut self, _rng: &mut SimRng) -> RoundReport {
//!         self.round += 1;
//!         RoundReport::empty(self.round)
//!     }
//! }
//!
//! let mut sim = Simulation::new(Idle { round: 0 }, SimRng::seed_from(42));
//! sim.run_rounds(10);
//! assert_eq!(sim.process().round(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod burnin;
pub mod codec;
pub mod engine;
pub mod error;
pub mod events;
pub mod faults;
mod obs;
pub mod output;
pub mod plot;
pub mod process;
pub mod rng;
pub mod runner;
pub mod stats;

pub use engine::Simulation;
pub use process::{AllocationProcess, RoundReport};
pub use rng::SimRng;
