//! The contract between allocation processes and the simulation engine.
//!
//! Every simulated process — CAPPED(c, λ), MODCAPPED(c, λ), batched
//! GREEDY\[d\], THRESHOLD\[T\] — implements [`AllocationProcess`]: a
//! synchronous-round state machine that, given a random source, executes one
//! parallel round and reports what happened in it as a [`RoundReport`].
//!
//! Keeping the report a plain data struct (rather than having processes call
//! into observers) keeps the processes pure and makes coupled executions
//! (two processes sharing randomness) straightforward.

use crate::rng::SimRng;

/// Everything that happened during one synchronous round of an allocation
/// process.
///
/// A `RoundReport` is produced by [`AllocationProcess::step`] and consumed by
/// observers ([`crate::engine::Observer`]). Fields that a particular process
/// cannot meaningfully fill (e.g. `failed_deletions` for a process without
/// per-round deletions) are left at their `0`/empty defaults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundReport {
    /// Index of the round this report describes (1-based; round 0 is the
    /// empty initial state).
    pub round: u64,
    /// Number of balls newly generated at the beginning of the round.
    pub generated: u64,
    /// Number of balls that competed for allocation this round
    /// (pool leftovers + newly generated).
    pub thrown: u64,
    /// Number of balls accepted into some bin's buffer this round.
    pub accepted: u64,
    /// Number of balls deleted (served) at the end of the round.
    pub deleted: u64,
    /// Number of bins whose deletion attempt failed this round, i.e. bins
    /// that were empty after the allocation stage (the quantity `X` in the
    /// paper's Lemmas 2–4).
    pub failed_deletions: u64,
    /// Pool size `m(t)` at the *end* of the round (balls left unallocated).
    pub pool_size: u64,
    /// Total number of balls stored in bin buffers at the end of the round.
    pub buffered: u64,
    /// Maximum bin load at the end of the round.
    pub max_load: u64,
    /// Waiting times (age at deletion, in rounds) of every ball deleted this
    /// round. Empty if the process does not track per-ball ages.
    pub waiting_times: Vec<u64>,
}

impl RoundReport {
    /// A report for a round in which nothing happened.
    pub fn empty(round: u64) -> Self {
        RoundReport {
            round,
            ..RoundReport::default()
        }
    }

    /// Total number of balls anywhere in the system (pool + buffers) at the
    /// end of the round. This is the "system load" tracked by the PODC'16
    /// baseline analyses.
    pub fn system_load(&self) -> u64 {
        self.pool_size + self.buffered
    }

    /// Maximum waiting time observed among this round's deletions, if any.
    pub fn max_waiting_time(&self) -> Option<u64> {
        self.waiting_times.iter().copied().max()
    }

    /// Checks the per-round conservation law
    /// `thrown = accepted + pool_size`: every competing ball is either
    /// accepted into a buffer or returns to the pool.
    pub fn conserves_balls(&self) -> bool {
        self.thrown == self.accepted + self.pool_size
    }
}

/// A synchronous-round allocation process driven by the simulation engine.
///
/// Implementations hold all process state (pool, bins, current round) and
/// advance by exactly one parallel round per [`step`](Self::step) call.
/// Randomness is injected so that runs are reproducible and so that two
/// processes can be *coupled* by feeding them correlated random sources.
pub trait AllocationProcess {
    /// Number of bins `n`.
    fn bins(&self) -> usize;

    /// Index of the last completed round (0 before the first step).
    fn round(&self) -> u64;

    /// Current pool size `m(t)`: balls waiting to be allocated.
    fn pool_size(&self) -> usize;

    /// Executes one synchronous round and reports what happened.
    fn step(&mut self, rng: &mut SimRng) -> RoundReport;

    /// Executes one synchronous round, writing the outcome into `report`
    /// in place.
    ///
    /// Semantically identical to `*report = self.step(rng)`, which is the
    /// default implementation. Processes that track per-ball waiting times
    /// should override this to refill `report.waiting_times` without
    /// reallocating, so that driver loops holding one report across rounds
    /// (the engine's `run_*` family, benchmark kernels) allocate nothing in
    /// steady state.
    fn step_into(&mut self, rng: &mut SimRng, report: &mut RoundReport) {
        *report = self.step(rng);
    }

    /// A short human-readable identifier, e.g. `"capped(c=3, λ=0.75)"`.
    /// Used in tables and bench labels.
    fn label(&self) -> String {
        "process".to_string()
    }

    /// Whether the process has terminated (only meaningful for *static*
    /// processes such as THRESHOLD\[T\] that allocate a fixed set of balls;
    /// infinite processes always return `false`).
    fn is_finished(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_all_zero() {
        let r = RoundReport::empty(5);
        assert_eq!(r.round, 5);
        assert_eq!(r.generated, 0);
        assert_eq!(r.system_load(), 0);
        assert_eq!(r.max_waiting_time(), None);
        assert!(r.conserves_balls());
    }

    #[test]
    fn system_load_sums_pool_and_buffers() {
        let r = RoundReport {
            pool_size: 7,
            buffered: 5,
            ..RoundReport::default()
        };
        assert_eq!(r.system_load(), 12);
    }

    #[test]
    fn max_waiting_time_picks_maximum() {
        let r = RoundReport {
            waiting_times: vec![3, 9, 1],
            ..RoundReport::default()
        };
        assert_eq!(r.max_waiting_time(), Some(9));
    }

    #[test]
    fn conservation_detects_mismatch() {
        let good = RoundReport {
            thrown: 10,
            accepted: 6,
            pool_size: 4,
            ..RoundReport::default()
        };
        assert!(good.conserves_balls());
        let bad = RoundReport {
            thrown: 10,
            accepted: 6,
            pool_size: 5,
            ..RoundReport::default()
        };
        assert!(!bad.conserves_balls());
    }
}
