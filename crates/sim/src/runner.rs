//! Multi-seed replication.
//!
//! Every figure data point is estimated from several independent
//! replications (distinct RNG streams split from one master seed). The
//! runner executes replications across OS threads — the workload is
//! embarrassingly parallel — and aggregates per-seed point estimates into a
//! [`PointEstimate`] with a confidence interval.

use std::num::NonZeroUsize;
use std::thread;

use crate::rng::SimRng;
use crate::stats::ci::{normal_ci, ConfidenceInterval};
use crate::stats::Summary;

/// Aggregate of one scalar metric across replications.
#[derive(Debug, Clone, PartialEq)]
pub struct PointEstimate {
    /// Summary over the per-replication estimates.
    pub summary: Summary,
    /// 95 % normal-approximation confidence interval over replications.
    pub ci95: ConfidenceInterval,
}

impl PointEstimate {
    /// Builds a point estimate from per-replication values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(
            !values.is_empty(),
            "point estimate needs at least one value"
        );
        let summary: Summary = values.iter().copied().collect();
        let ci95 = normal_ci(&summary, 0.95);
        PointEstimate { summary, ci95 }
    }

    /// Mean across replications.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Maximum across replications.
    pub fn max(&self) -> f64 {
        self.summary.max().unwrap_or(0.0)
    }
}

/// Name of the environment variable overriding the worker-thread count
/// used by [`replicate`]. See [`thread_budget`].
pub const THREADS_ENV: &str = "IBA_THREADS";

/// The number of worker threads [`replicate`] will use: the value of the
/// `IBA_THREADS` environment variable if set to a positive integer
/// (clamped up to 1; non-numeric or empty values are ignored), otherwise
/// [`std::thread::available_parallelism`]. Useful to pin experiments to a
/// fixed core budget (`IBA_THREADS=2 cargo bench …`) or to serialize them
/// entirely (`IBA_THREADS=1`) for debugging.
pub fn thread_budget() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(threads) = raw.trim().parse::<usize>() {
            return threads.max(1);
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `count` replications of `job` in parallel and returns their results
/// in replication order.
///
/// Each replication gets a decorrelated [`SimRng`] derived from
/// `master_seed` (see [`SimRng::family`]), so the full experiment is a pure
/// function of `(master_seed, count, job)`.
///
/// The closure receives `(replication_index, rng)`. The degree of
/// parallelism is [`thread_budget`] (the `IBA_THREADS` override, else the
/// detected core count) capped at `count`; thread count never affects the
/// results, only the wall-clock time.
///
/// # Panics
///
/// Panics if `count == 0` or if a replication thread panics.
pub fn replicate<T, F>(master_seed: u64, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
{
    assert!(count > 0, "need at least one replication");
    let rngs = SimRng::family(master_seed, count);
    let threads = thread_budget().min(count);

    if threads <= 1 {
        return rngs
            .into_iter()
            .enumerate()
            .map(|(i, rng)| job(i, rng))
            .collect();
    }

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let job_ref = &job;
    thread::scope(|scope| {
        let mut remaining: &mut [Option<T>] = &mut slots;
        let mut rng_iter = rngs.into_iter();
        let mut next_index = 0usize;
        // Split the result slice into contiguous chunks, one per thread.
        let chunk = count.div_ceil(threads);
        while !remaining.is_empty() {
            let take = chunk.min(remaining.len());
            let (head, tail) = remaining.split_at_mut(take);
            let base = next_index;
            let chunk_rngs: Vec<SimRng> = (&mut rng_iter).take(take).collect();
            scope.spawn(move || {
                for (offset, (slot, rng)) in head.iter_mut().zip(chunk_rngs).enumerate() {
                    *slot = Some(job_ref(base + offset, rng));
                }
            });
            remaining = tail;
            next_index += take;
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("replication thread filled its slot"))
        .collect()
}

/// Convenience wrapper: runs replications that each return one scalar and
/// aggregates them into a [`PointEstimate`].
pub fn replicate_scalar<F>(master_seed: u64, count: usize, job: F) -> PointEstimate
where
    F: Fn(usize, SimRng) -> f64 + Sync,
{
    let values = replicate(master_seed, count, job);
    PointEstimate::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_budget_honors_env_override() {
        // A single test owns the variable (concurrent tests would race on
        // process-global state): set → parse, junk → fallback, zero →
        // clamp, unset → detection. Thread count never changes
        // replicate()'s results, only its schedule, so the other runner
        // tests are unaffected whatever value they observe mid-test.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(thread_budget(), 3);
        std::env::set_var(THREADS_ENV, " 5 ");
        assert_eq!(thread_budget(), 5, "whitespace is trimmed");
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(thread_budget(), 1, "zero clamps to one thread");
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(thread_budget() >= 1, "junk falls back to detection");

        std::env::set_var(THREADS_ENV, "1");
        let serial = replicate(11, 12, |_i, mut rng| rng.next_u64());
        std::env::set_var(THREADS_ENV, "4");
        let parallel = replicate(11, 12, |_i, mut rng| rng.next_u64());
        assert_eq!(serial, parallel, "budget must not change results");

        std::env::remove_var(THREADS_ENV);
        assert!(thread_budget() >= 1);
    }

    #[test]
    fn replicate_preserves_order_and_count() {
        let out = replicate(1, 10, |i, _rng| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
    }

    #[test]
    fn replicate_is_deterministic_across_runs() {
        let a = replicate(42, 8, |_i, mut rng| rng.next_u64());
        let b = replicate(42, 8, |_i, mut rng| rng.next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn replicate_streams_are_distinct() {
        let draws = replicate(7, 6, |_i, mut rng| rng.next_u64());
        for i in 0..draws.len() {
            for j in (i + 1)..draws.len() {
                assert_ne!(draws[i], draws[j]);
            }
        }
    }

    #[test]
    fn replicate_single() {
        let out = replicate(3, 1, |i, _| i);
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn replicate_zero_panics() {
        let _ = replicate(0, 0, |_, _| ());
    }

    #[test]
    fn scalar_aggregation() {
        let est = replicate_scalar(5, 16, |i, _| i as f64);
        assert_eq!(est.summary.count(), 16);
        assert!((est.mean() - 7.5).abs() < 1e-12);
        assert_eq!(est.max(), 15.0);
        assert!(est.ci95.half_width > 0.0);
        assert!(est.ci95.contains(7.5));
    }

    #[test]
    fn point_estimate_from_values() {
        let est = PointEstimate::from_values(&[2.0, 4.0]);
        assert_eq!(est.mean(), 3.0);
        assert_eq!(est.max(), 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn point_estimate_empty_panics() {
        let _ = PointEstimate::from_values(&[]);
    }
}
