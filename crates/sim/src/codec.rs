//! A small, versioned binary codec for simulation checkpoints.
//!
//! Paper-scale runs at heavy λ can take minutes; the checkpoint feature
//! lets a long simulation be saved and resumed bit-exactly (state +
//! RNG). The format is deliberately simple: little-endian primitives, a
//! magic/version header, length-prefixed sequences, and a CRC32 footer
//! over the entire payload so any corruption — a single flipped bit
//! included — is rejected deterministically at decode time instead of
//! surfacing as a subtly wrong simulation. Hand-rolled because the
//! approved dependency set has no serializer that emits a concrete
//! format (`serde` alone is only an abstraction).

use std::error::Error;
use std::fmt;

/// Error returned when decoding a checkpoint fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input ended before the expected field.
    UnexpectedEnd {
        /// What was being decoded.
        what: &'static str,
    },
    /// The magic tag did not match, or the version field was zero.
    BadHeader {
        /// Expected tag.
        expected: &'static str,
    },
    /// The header is valid but was written by a newer format revision
    /// than this binary understands.
    FutureVersion {
        /// Tag whose version field was too new.
        tag: &'static str,
        /// Version found in the input.
        found: u32,
        /// Newest version this binary can read.
        max_supported: u32,
    },
    /// The CRC32 footer did not match the payload: the input is
    /// corrupted (or is not a checksummed checkpoint at all).
    ChecksumMismatch {
        /// Checksum recomputed over the payload.
        computed: u32,
        /// Checksum stored in the footer.
        stored: u32,
    },
    /// A decoded value violated an invariant.
    Invalid {
        /// What was invalid.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { what } => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CodecError::BadHeader { expected } => {
                write!(f, "checkpoint header mismatch (expected {expected})")
            }
            CodecError::FutureVersion {
                tag,
                found,
                max_supported,
            } => write!(
                f,
                "checkpoint {tag} was written by a newer format revision \
                 (version {found}, this binary supports up to {max_supported}); \
                 upgrade the binary or re-create the checkpoint"
            ),
            CodecError::ChecksumMismatch { computed, stored } => write!(
                f,
                "checkpoint payload is corrupted: CRC32 footer {stored:#010x} \
                 does not match recomputed {computed:#010x}"
            ),
            CodecError::Invalid { what } => write!(f, "checkpoint contains invalid {what}"),
        }
    }
}

impl Error for CodecError {}

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    // CRC-32/ISO-HDLC (the zlib/PNG polynomial), reflected form.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32/ISO-HDLC checksum of `data` (the checksum zlib and PNG use).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Binary encoder: appends little-endian fields to a buffer.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Writes a tag + version header.
    pub fn header(&mut self, tag: &'static str, version: u32) {
        self.bytes(tag.as_bytes());
        self.u32(version);
    }

    /// Writes raw bytes (no length prefix).
    pub fn bytes(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` (IEEE bits).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a length-prefixed sequence of `u64`.
    pub fn u64_seq(&mut self, values: impl ExactSizeIterator<Item = u64>) {
        self.usize(values.len());
        for v in values {
            self.u64(v);
        }
    }

    /// Writes a length-prefixed byte blob. Used to nest one checkpoint
    /// inside another (e.g. a service envelope wrapping a core
    /// checkpoint) without the outer format knowing the inner layout.
    pub fn byte_seq(&mut self, data: &[u8]) {
        self.usize(data.len());
        self.bytes(data);
    }

    /// Finishes encoding: appends the CRC32 footer over everything
    /// written so far and returns the buffer. [`Decoder::new`] verifies
    /// and strips this footer, so any single-byte change anywhere in the
    /// output is rejected at decode time.
    pub fn finish(self) -> Vec<u8> {
        let mut buf = self.buf;
        let checksum = crc32(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }
}

/// Binary decoder over a checkpoint byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`, which must end with the CRC32
    /// footer [`Encoder::finish`] appends. The footer is verified against
    /// the payload and stripped; decoding then sees only the payload.
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.len() < 4 {
            return Err(CodecError::UnexpectedEnd {
                what: "checksum footer",
            });
        }
        let (payload, footer) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().expect("length 4"));
        let computed = crc32(payload);
        if computed != stored {
            return Err(CodecError::ChecksumMismatch { computed, stored });
        }
        Ok(Decoder {
            data: payload,
            pos: 0,
        })
    }

    fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.pos + len > self.data.len() {
            return Err(CodecError::UnexpectedEnd { what });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads and verifies a tag + version header; returns the version.
    ///
    /// A version newer than `max_version` yields
    /// [`CodecError::FutureVersion`], naming both versions so the caller
    /// can tell "wrong file" from "newer tool wrote this".
    pub fn header(&mut self, tag: &'static str, max_version: u32) -> Result<u32, CodecError> {
        let bytes = self.take(tag.len(), "header tag")?;
        if bytes != tag.as_bytes() {
            return Err(CodecError::BadHeader { expected: tag });
        }
        let version = self.u32("header version")?;
        if version == 0 {
            return Err(CodecError::BadHeader { expected: tag });
        }
        if version > max_version {
            return Err(CodecError::FutureVersion {
                tag,
                found: version,
                max_supported: max_version,
            });
        }
        Ok(version)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("length 4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("length 8")))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        Ok(self.u64(what)? as usize)
    }

    /// Reads an `f64`.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("length 8")))
    }

    /// Reads a bool.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        let b = self.take(1, what)?;
        match b[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { what }),
        }
    }

    /// Reads a length-prefixed sequence of `u64`.
    pub fn u64_seq(&mut self, what: &'static str) -> Result<Vec<u64>, CodecError> {
        let len = self.usize(what)?;
        if len > self.data.len().saturating_sub(self.pos) / 8 {
            return Err(CodecError::UnexpectedEnd { what });
        }
        (0..len).map(|_| self.u64(what)).collect()
    }

    /// Reads a length-prefixed byte blob written by [`Encoder::byte_seq`].
    pub fn byte_seq(&mut self, what: &'static str) -> Result<&'a [u8], CodecError> {
        let len = self.usize(what)?;
        if len > self.data.len().saturating_sub(self.pos) {
            return Err(CodecError::UnexpectedEnd { what });
        }
        self.take(len, what)
    }

    /// Whether all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Appends a valid CRC32 footer to a hand-built payload so tests can
    /// exercise decoding of arbitrary (non-`Encoder`) byte patterns.
    fn with_footer(payload: &[u8]) -> Vec<u8> {
        let mut bytes = payload.to_vec();
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes
    }

    #[test]
    fn primitive_roundtrip() {
        let mut enc = Encoder::new();
        enc.header("TEST", 1);
        enc.u32(7);
        enc.u64(u64::MAX);
        enc.usize(42);
        enc.f64(-0.5);
        enc.bool(true);
        enc.bool(false);
        enc.u64_seq([1u64, 2, 3].into_iter());
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(dec.header("TEST", 1).unwrap(), 1);
        assert_eq!(dec.u32("a").unwrap(), 7);
        assert_eq!(dec.u64("b").unwrap(), u64::MAX);
        assert_eq!(dec.usize("c").unwrap(), 42);
        assert_eq!(dec.f64("d").unwrap(), -0.5);
        assert!(dec.bool("e").unwrap());
        assert!(!dec.bool("f").unwrap());
        assert_eq!(dec.u64_seq("g").unwrap(), vec![1, 2, 3]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn byte_seq_roundtrip_and_truncation() {
        let mut enc = Encoder::new();
        enc.byte_seq(b"inner checkpoint bytes");
        enc.byte_seq(b"");
        enc.u64(7);
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(dec.byte_seq("a").unwrap(), b"inner checkpoint bytes");
        assert_eq!(dec.byte_seq("b").unwrap(), b"");
        assert_eq!(dec.u64("c").unwrap(), 7);
        assert!(dec.is_exhausted());

        // A length prefix pointing past the end of the payload.
        let bytes = with_footer(&100u64.to_le_bytes());
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(
            dec.byte_seq("blob"),
            Err(CodecError::UnexpectedEnd { what: "blob" })
        );
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Published CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let mut enc = Encoder::new();
        enc.header("TEST", 1);
        enc.u64_seq([9u64, 8, 7, 6].into_iter());
        enc.bool(true);
        let bytes = enc.finish();

        assert!(Decoder::new(&bytes).is_ok());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[i] ^= 1 << bit;
                match Decoder::new(&corrupted) {
                    Err(CodecError::ChecksumMismatch { .. }) => {}
                    other => panic!("flip at byte {i} bit {bit} not caught: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn truncated_footer_is_rejected() {
        let mut bytes = Encoder::new().finish();
        assert_eq!(bytes.len(), 4); // empty payload + footer
        assert!(Decoder::new(&bytes).is_ok());
        bytes.pop();
        assert_eq!(
            Decoder::new(&bytes).err(),
            Some(CodecError::UnexpectedEnd {
                what: "checksum footer"
            })
        );
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let mut enc = Encoder::new();
        enc.header("AAAA", 1);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(
            dec.header("BBBB", 1),
            Err(CodecError::BadHeader { expected: "BBBB" })
        );
    }

    #[test]
    fn future_version_is_rejected_with_actionable_error() {
        let mut enc = Encoder::new();
        enc.header("TAGX", 5);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(
            dec.header("TAGX", 4),
            Err(CodecError::FutureVersion {
                tag: "TAGX",
                found: 5,
                max_supported: 4,
            })
        );
    }

    #[test]
    fn zero_version_is_rejected_as_bad_header() {
        let mut enc = Encoder::new();
        enc.header("TAGX", 0);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(
            dec.header("TAGX", 4),
            Err(CodecError::BadHeader { expected: "TAGX" })
        );
    }

    #[test]
    fn truncation_is_detected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.pop();
        let bytes = with_footer(&payload);
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(
            dec.u64("value"),
            Err(CodecError::UnexpectedEnd { what: "value" })
        );
    }

    #[test]
    fn absurd_sequence_length_is_rejected() {
        // Length prefix with no data behind it.
        let bytes = with_footer(&(usize::MAX / 2).to_le_bytes());
        let mut dec = Decoder::new(&bytes).unwrap();
        assert!(dec.u64_seq("seq").is_err());
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let bytes = with_footer(&[7u8]);
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(dec.bool("flag"), Err(CodecError::Invalid { what: "flag" }));
    }

    #[test]
    fn error_messages_render() {
        for e in [
            CodecError::UnexpectedEnd { what: "x" },
            CodecError::BadHeader { expected: "y" },
            CodecError::FutureVersion {
                tag: "y",
                found: 3,
                max_supported: 2,
            },
            CodecError::ChecksumMismatch {
                computed: 1,
                stored: 2,
            },
            CodecError::Invalid { what: "z" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
