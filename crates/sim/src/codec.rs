//! A small, versioned binary codec for simulation checkpoints.
//!
//! Paper-scale runs at heavy λ can take minutes; the checkpoint feature
//! lets a long simulation be saved and resumed bit-exactly (state +
//! RNG). The format is deliberately simple: little-endian primitives, a
//! magic/version header, and length-prefixed sequences. Hand-rolled
//! because the approved dependency set has no serializer that emits a
//! concrete format (`serde` alone is only an abstraction).

use std::error::Error;
use std::fmt;

/// Error returned when decoding a checkpoint fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input ended before the expected field.
    UnexpectedEnd {
        /// What was being decoded.
        what: &'static str,
    },
    /// The magic tag or version did not match.
    BadHeader {
        /// Expected tag.
        expected: &'static str,
    },
    /// A decoded value violated an invariant.
    Invalid {
        /// What was invalid.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { what } => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CodecError::BadHeader { expected } => {
                write!(f, "checkpoint header mismatch (expected {expected})")
            }
            CodecError::Invalid { what } => write!(f, "checkpoint contains invalid {what}"),
        }
    }
}

impl Error for CodecError {}

/// Binary encoder: appends little-endian fields to a buffer.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Writes a tag + version header.
    pub fn header(&mut self, tag: &'static str, version: u32) {
        self.bytes(tag.as_bytes());
        self.u32(version);
    }

    /// Writes raw bytes (no length prefix).
    pub fn bytes(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` (IEEE bits).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a length-prefixed sequence of `u64`.
    pub fn u64_seq(&mut self, values: impl ExactSizeIterator<Item = u64>) {
        self.usize(values.len());
        for v in values {
            self.u64(v);
        }
    }

    /// Finishes encoding, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Binary decoder over a checkpoint byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.pos + len > self.data.len() {
            return Err(CodecError::UnexpectedEnd { what });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads and verifies a tag + version header; returns the version.
    pub fn header(&mut self, tag: &'static str, max_version: u32) -> Result<u32, CodecError> {
        let bytes = self.take(tag.len(), "header tag")?;
        if bytes != tag.as_bytes() {
            return Err(CodecError::BadHeader { expected: tag });
        }
        let version = self.u32("header version")?;
        if version == 0 || version > max_version {
            return Err(CodecError::BadHeader { expected: tag });
        }
        Ok(version)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("length 4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("length 8")))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        Ok(self.u64(what)? as usize)
    }

    /// Reads an `f64`.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("length 8")))
    }

    /// Reads a bool.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        let b = self.take(1, what)?;
        match b[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { what }),
        }
    }

    /// Reads a length-prefixed sequence of `u64`.
    pub fn u64_seq(&mut self, what: &'static str) -> Result<Vec<u64>, CodecError> {
        let len = self.usize(what)?;
        if len > self.data.len().saturating_sub(self.pos) / 8 {
            return Err(CodecError::UnexpectedEnd { what });
        }
        (0..len).map(|_| self.u64(what)).collect()
    }

    /// Whether all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut enc = Encoder::new();
        enc.header("TEST", 1);
        enc.u32(7);
        enc.u64(u64::MAX);
        enc.usize(42);
        enc.f64(-0.5);
        enc.bool(true);
        enc.bool(false);
        enc.u64_seq([1u64, 2, 3].into_iter());
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.header("TEST", 1).unwrap(), 1);
        assert_eq!(dec.u32("a").unwrap(), 7);
        assert_eq!(dec.u64("b").unwrap(), u64::MAX);
        assert_eq!(dec.usize("c").unwrap(), 42);
        assert_eq!(dec.f64("d").unwrap(), -0.5);
        assert!(dec.bool("e").unwrap());
        assert!(!dec.bool("f").unwrap());
        assert_eq!(dec.u64_seq("g").unwrap(), vec![1, 2, 3]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let mut enc = Encoder::new();
        enc.header("AAAA", 1);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            dec.header("BBBB", 1),
            Err(CodecError::BadHeader { expected: "BBBB" })
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut enc = Encoder::new();
        enc.header("TAGX", 5);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.header("TAGX", 4).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut enc = Encoder::new();
        enc.u64(1);
        let mut bytes = enc.finish();
        bytes.pop();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            dec.u64("value"),
            Err(CodecError::UnexpectedEnd { what: "value" })
        );
    }

    #[test]
    fn absurd_sequence_length_is_rejected() {
        let mut enc = Encoder::new();
        enc.usize(usize::MAX / 2); // length prefix with no data behind it
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.u64_seq("seq").is_err());
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let bytes = [7u8];
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.bool("flag"), Err(CodecError::Invalid { what: "flag" }));
    }

    #[test]
    fn error_messages_render() {
        for e in [
            CodecError::UnexpectedEnd { what: "x" },
            CodecError::BadHeader { expected: "y" },
            CodecError::Invalid { what: "z" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
