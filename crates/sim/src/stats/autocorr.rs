//! Autocorrelation and effective sample size.
//!
//! The paper averages each data point over a 1000-round window. Rounds are
//! *not* independent — the pool size mixes on a timescale of `1/(1−λ)` —
//! so the effective number of independent observations in a window is
//! smaller than its length. These diagnostics quantify that: the
//! measurement harness can report the effective sample size alongside each
//! estimate, and the tests verify the window comfortably exceeds the
//! integrated autocorrelation time for the paper's parameter ranges.

/// Sample autocorrelation of `data` at the given `lag`.
///
/// Returns `None` if fewer than `lag + 2` observations are available or if
/// the series has zero variance.
///
/// # Examples
///
/// ```
/// use iba_sim::stats::autocorr::autocorrelation;
/// // An alternating series is perfectly anti-correlated at lag 1.
/// let data: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let r1 = autocorrelation(&data, 1).unwrap();
/// assert!(r1 < -0.95);
/// ```
pub fn autocorrelation(data: &[f64], lag: usize) -> Option<f64> {
    if data.len() < lag + 2 {
        return None;
    }
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let var: f64 = data.iter().map(|x| (x - mean).powi(2)).sum();
    if var == 0.0 {
        return None;
    }
    let cov: f64 = data[..n - lag]
        .iter()
        .zip(&data[lag..])
        .map(|(&a, &b)| (a - mean) * (b - mean))
        .sum();
    Some(cov / var)
}

/// Integrated autocorrelation time
/// `τ = 1 + 2·Σ_{k≥1} ρ(k)`, with the sum truncated at the first
/// non-positive autocorrelation (Geyer's initial-positive-sequence rule,
/// simplified). Returns at least 1.
///
/// Returns `None` for series shorter than 4 observations or with zero
/// variance.
pub fn integrated_autocorrelation_time(data: &[f64]) -> Option<f64> {
    if data.len() < 4 {
        return None;
    }
    // Zero-variance series have no defined autocorrelation structure.
    autocorrelation(data, 1)?;
    let max_lag = data.len() / 2;
    let mut tau = 1.0;
    for lag in 1..max_lag {
        match autocorrelation(data, lag) {
            Some(rho) if rho > 0.0 => tau += 2.0 * rho,
            _ => break,
        }
    }
    Some(tau.max(1.0))
}

/// Effective sample size `n / τ` of a correlated series.
///
/// Returns `None` under the same conditions as
/// [`integrated_autocorrelation_time`].
pub fn effective_sample_size(data: &[f64]) -> Option<f64> {
    let tau = integrated_autocorrelation_time(data)?;
    Some(data.len() as f64 / tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn iid_series_has_near_zero_autocorrelation() {
        let mut rng = SimRng::seed_from(1);
        let data: Vec<f64> = (0..10_000).map(|_| rng.unit_f64()).collect();
        let r1 = autocorrelation(&data, 1).unwrap();
        assert!(r1.abs() < 0.05, "{r1}");
        let ess = effective_sample_size(&data).unwrap();
        assert!(ess > 0.5 * data.len() as f64, "{ess}");
    }

    #[test]
    fn constant_series_has_no_autocorrelation() {
        let data = vec![5.0; 100];
        assert_eq!(autocorrelation(&data, 1), None);
        assert_eq!(integrated_autocorrelation_time(&data), None);
    }

    #[test]
    fn ar1_series_matches_theory() {
        // AR(1) with coefficient φ: ρ(k) = φ^k, τ = (1 + φ)/(1 − φ).
        let phi = 0.8;
        let mut rng = SimRng::seed_from(2);
        let mut x = 0.0;
        let data: Vec<f64> = (0..50_000)
            .map(|_| {
                x = phi * x + (rng.unit_f64() - 0.5);
                x
            })
            .collect();
        let r1 = autocorrelation(&data, 1).unwrap();
        assert!((r1 - phi).abs() < 0.05, "rho(1) = {r1}");
        let tau = integrated_autocorrelation_time(&data).unwrap();
        let expected = (1.0 + phi) / (1.0 - phi); // 9.0
        assert!(
            (tau - expected).abs() < 2.5,
            "tau = {tau}, expected ≈ {expected}"
        );
    }

    #[test]
    fn short_series_return_none() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 1), None);
        assert_eq!(integrated_autocorrelation_time(&[1.0, 2.0, 3.0]), None);
        assert_eq!(effective_sample_size(&[]), None);
    }

    #[test]
    fn lag_zero_is_one() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let r0 = autocorrelation(&data, 0).unwrap();
        assert!((r0 - 1.0).abs() < 1e-12);
    }
}
