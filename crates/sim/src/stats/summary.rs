//! Streaming summary statistics (Welford's online algorithm).

use std::fmt;

/// Streaming mean, variance, min and max over a sequence of observations.
///
/// Uses Welford's numerically stable single-pass update, so it can summarize
/// arbitrarily long measurement windows in O(1) memory.
///
/// # Examples
///
/// ```
/// use iba_sim::stats::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds an integer observation (convenience for count metrics).
    pub fn push_u64(&mut self, x: u64) {
        self.push(x as f64);
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by N; 0 if fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by N−1; 0 if fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation, if any.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation, if any.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.push(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s: Summary = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 * 1.3 - 7.0).collect();
        let (left, right) = data.split_at(20);
        let mut a: Summary = left.iter().copied().collect();
        let b: Summary = right.iter().copied().collect();
        a.merge(&b);
        let full: Summary = data.iter().copied().collect();
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - full.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn std_error_shrinks_with_count() {
        let mut few = Summary::new();
        let mut many = Summary::new();
        for i in 0..10 {
            few.push((i % 2) as f64);
        }
        for i in 0..1000 {
            many.push((i % 2) as f64);
        }
        assert!(many.std_error() < few.std_error());
    }

    #[test]
    fn extend_and_push_u64() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.push_u64(3);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }
}
