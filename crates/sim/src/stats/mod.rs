//! Statistics utilities for the measurement harness.
//!
//! The paper's evaluation (Section V) reports, per data point, averages and
//! maxima over a 1000-round measurement window after burn-in. This module
//! provides the machinery behind that and behind the extra diagnostics used
//! in this reproduction:
//!
//! - [`summary::Summary`] — streaming mean/variance/min/max
//!   (Welford's algorithm).
//! - [`histogram::Histogram`] — integer-valued histograms for
//!   waiting times and bin loads.
//! - [`quantile`] — exact quantiles of a sample.
//! - [`timeseries::TimeSeries`] — round-indexed series with
//!   window statistics and slope estimation (used by adaptive burn-in).
//! - [`regression`] — ordinary least squares for fit diagnostics.
//! - [`autocorr`] — autocorrelation diagnostics and effective sample size.
//! - [`ci`] — normal-approximation confidence intervals across replications.

pub mod autocorr;
pub mod ci;
pub mod histogram;
pub mod quantile;
pub mod regression;
pub mod summary;
pub mod timeseries;

pub use ci::ConfidenceInterval;
pub use histogram::Histogram;
pub use summary::Summary;
pub use timeseries::TimeSeries;
