//! Ordinary least-squares linear regression.
//!
//! Used for two things in this reproduction:
//!
//! 1. Burn-in detection — the slope of the pool-size series over a sliding
//!    window must vanish relative to the series scale.
//! 2. Shape verification — the comparison experiment (`CMP` in DESIGN.md)
//!    fits waiting time against `log n` and `log log n` covariates to decide
//!    which growth law describes a process.

/// Result of a simple linear fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Estimated slope.
    pub slope: f64,
    /// Estimated intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (1 for a perfect fit; 0 when the
    /// model explains nothing beyond the mean; can be negative only for
    /// degenerate inputs, where it is clamped to 0).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y ≈ a + b·x` by ordinary least squares.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths or fewer than 2 points,
/// or if all `x` values are identical (the slope is then undefined).
///
/// # Examples
///
/// ```
/// use iba_sim::stats::regression::linear_fit;
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let fit = linear_fit(&xs, &ys);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x and y must have equal length");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "all x values identical; slope undefined");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // constant y perfectly fit by slope 0
    } else {
        ((sxy * sxy) / (sxx * syy)).clamp(0.0, 1.0)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Compares how well `y` is explained by each of several candidate
/// covariates, returning the index of the covariate with the highest R².
///
/// This implements the "growth-law classifier" used by the comparison
/// experiment: given waiting times measured for several `n`, the covariates
/// are `log₂ n` and `log₂ log₂ n`, and the winner tells us which asymptotic
/// the data follows.
///
/// # Panics
///
/// Panics if `candidates` is empty or any candidate's length differs from
/// `ys`.
pub fn best_covariate(candidates: &[Vec<f64>], ys: &[f64]) -> (usize, LinearFit) {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut best: Option<(usize, LinearFit)> = None;
    for (i, xs) in candidates.iter().enumerate() {
        let fit = linear_fit(xs, ys);
        if best.is_none() || fit.r_squared > best.as_ref().unwrap().1.r_squared {
            best = Some((i, fit));
        }
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 4.0).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope + 3.0).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(2.0) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_y_has_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_data_has_partial_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 1.2, 1.8, 3.3, 3.7];
        let fit = linear_fit(&xs, &ys);
        assert!(fit.r_squared > 0.95 && fit.r_squared < 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        linear_fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn best_covariate_identifies_log_growth() {
        // y grows like log2(n): the log2 covariate must win over loglog.
        let ns: Vec<f64> = (10..=16).map(|e| (1u64 << e) as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 3.0 * n.log2() + 1.0).collect();
        let log_cov: Vec<f64> = ns.iter().map(|n| n.log2()).collect();
        let loglog_cov: Vec<f64> = ns.iter().map(|n| n.log2().log2()).collect();
        let (winner, fit) = best_covariate(&[loglog_cov, log_cov], &ys);
        assert_eq!(winner, 1);
        assert!((fit.slope - 3.0).abs() < 1e-9);
    }

    #[test]
    fn best_covariate_identifies_loglog_growth() {
        let ns: Vec<f64> = (10..=20).map(|e| (1u64 << e) as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 2.0 * n.log2().log2() + 0.5).collect();
        let log_cov: Vec<f64> = ns.iter().map(|n| n.log2()).collect();
        let loglog_cov: Vec<f64> = ns.iter().map(|n| n.log2().log2()).collect();
        let (winner, _) = best_covariate(&[loglog_cov, log_cov], &ys);
        assert_eq!(winner, 0);
    }
}
