//! Confidence intervals across replications.
//!
//! Each figure data point in this reproduction is run with several seeds;
//! the runner reports a normal-approximation confidence interval over the
//! per-seed point estimates so EXPERIMENTS.md can state measurement
//! uncertainty.

use crate::stats::summary::Summary;

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean across replications).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level the interval was built for, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

/// Two-sided standard-normal quantile `z` such that `Φ(z) = (1 + level)/2`,
/// computed by bisection on the complementary error function.
///
/// # Panics
///
/// Panics if `level` is not in `(0, 1)`.
pub fn z_value(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1)"
    );
    let target = (1.0 + level) / 2.0;
    // Bisection over [0, 10] on the standard normal CDF, which is monotone.
    let (mut lo, mut hi) = (0.0f64, 10.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (absolute error < 1.5·10⁻⁷, ample for confidence intervals).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Builds a normal-approximation confidence interval from a summary of
/// per-replication estimates.
///
/// With a single replication, the half-width is 0 (no spread information);
/// callers should prefer ≥ 3 replications for meaningful intervals.
///
/// # Panics
///
/// Panics if `summary` is empty or `level` is not in `(0, 1)`.
pub fn normal_ci(summary: &Summary, level: f64) -> ConfidenceInterval {
    assert!(summary.count() > 0, "confidence interval of empty sample");
    ConfidenceInterval {
        mean: summary.mean(),
        half_width: z_value(level) * summary.std_error(),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 polynomial has absolute error up to 1.5e-7.
        assert!(erf(0.0).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn z_value_matches_textbook() {
        assert!((z_value(0.95) - 1.95996).abs() < 1e-3);
        assert!((z_value(0.99) - 2.57583).abs() < 1e-3);
        assert!((z_value(0.68) - 0.99446).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn z_value_rejects_bad_level() {
        z_value(1.0);
    }

    #[test]
    fn ci_endpoints_and_contains() {
        let s: Summary = [10.0, 12.0, 11.0, 9.0, 13.0].into_iter().collect();
        let ci = normal_ci(&s, 0.95);
        assert!((ci.mean - 11.0).abs() < 1e-12);
        assert!(ci.half_width > 0.0);
        assert!(ci.contains(11.0));
        assert!(ci.contains(ci.lo()) && ci.contains(ci.hi()));
        assert!(!ci.contains(ci.hi() + 0.001));
        assert_eq!(ci.lo(), ci.mean - ci.half_width);
        assert_eq!(ci.hi(), ci.mean + ci.half_width);
    }

    #[test]
    fn single_observation_has_zero_width() {
        let s: Summary = [5.0].into_iter().collect();
        let ci = normal_ci(&s, 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(5.0));
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let s: Summary = (0..20).map(|i| i as f64).collect();
        let ci95 = normal_ci(&s, 0.95);
        let ci99 = normal_ci(&s, 0.99);
        assert!(ci99.half_width > ci95.half_width);
    }

    #[test]
    fn display_is_nonempty() {
        let ci = ConfidenceInterval {
            mean: 1.0,
            half_width: 0.5,
            level: 0.95,
        };
        assert!(ci.to_string().contains('±'));
    }
}
