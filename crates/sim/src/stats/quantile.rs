//! Exact quantiles of floating-point samples.
//!
//! The replication runner aggregates per-seed point estimates (e.g. the mean
//! waiting time of each seed) and reports medians and inter-seed spread;
//! those samples are small, so exact quantiles are cheap and preferable to
//! streaming estimators.

/// Returns the `q`-quantile of `data` using linear interpolation between
/// order statistics (type-7 quantile, the R/NumPy default).
///
/// Returns `None` when `data` is empty. Does not require `data` to be
/// sorted; a sorted copy is made internally.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or if `data` contains a NaN.
///
/// # Examples
///
/// ```
/// use iba_sim::stats::quantile::quantile;
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&data, 0.5), Some(2.5));
/// assert_eq!(quantile(&data, 0.0), Some(1.0));
/// assert_eq!(quantile(&data, 1.0), Some(4.0));
/// ```
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile input must not contain NaN")
    });
    Some(quantile_sorted(&sorted, q))
}

/// Like [`quantile`] but assumes `data` is already sorted ascending.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or `data` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Returns the median of `data` (`None` if empty).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Returns the interquartile range `q75 − q25` (`None` if empty).
pub fn iqr(data: &[f64]) -> Option<f64> {
    Some(quantile(data, 0.75)? - quantile(data, 0.25)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert_eq!(iqr(&[]), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.quantile([10, 20, 30, 40], 0.3) == 19.0
        let data = [10.0, 20.0, 30.0, 40.0];
        let q = quantile(&data, 0.3).unwrap();
        assert!((q - 19.0).abs() < 1e-12, "{q}");
    }

    #[test]
    fn unsorted_input_is_handled() {
        let data = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&data), Some(5.0));
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let r = iqr(&data).unwrap();
        assert!((r - 50.0).abs() < 1e-9, "{r}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_q_panics() {
        let _ = quantile(&[1.0], 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_input_panics() {
        let _ = quantile(&[1.0, f64::NAN], 0.5);
    }
}
