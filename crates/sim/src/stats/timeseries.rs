//! Round-indexed time series with window statistics.
//!
//! Used by the burn-in detector (slope of the pool-size series) and by the
//! measurement harness (window means over the stationary regime).

use crate::stats::regression::linear_fit;
use crate::stats::summary::Summary;

/// A time series of one observation per round.
///
/// # Examples
///
/// ```
/// use iba_sim::stats::TimeSeries;
/// let mut ts = TimeSeries::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     ts.push(v);
/// }
/// assert_eq!(ts.len(), 4);
/// assert_eq!(ts.window_summary(2).mean(), 3.5); // last two values
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Creates an empty series with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            values: Vec::with_capacity(capacity),
        }
    }

    /// Appends the next round's observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All recorded values, oldest first.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Summary statistics over the last `window` observations (or all of
    /// them, if fewer are available).
    pub fn window_summary(&self, window: usize) -> Summary {
        let start = self.values.len().saturating_sub(window);
        self.values[start..].iter().copied().collect()
    }

    /// Summary over the half-open index range `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn range_summary(&self, from: usize, to: usize) -> Summary {
        self.values[from..to].iter().copied().collect()
    }

    /// Least-squares slope (per round) of the last `window` observations.
    ///
    /// Returns `None` if fewer than two observations are available. Used by
    /// adaptive burn-in: a stationary series has slope ≈ 0 relative to its
    /// own scale.
    pub fn window_slope(&self, window: usize) -> Option<f64> {
        let start = self.values.len().saturating_sub(window);
        let tail = &self.values[start..];
        if tail.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = (0..tail.len()).map(|i| i as f64).collect();
        Some(linear_fit(&xs, tail).slope)
    }

    /// Splits the last `window` observations into halves and returns the
    /// relative difference of the half-means: `|m₂ − m₁| / max(|m₁|, |m₂|, ε)`.
    ///
    /// A small value indicates stationarity over the window (a cheap Geweke-
    /// style diagnostic). Returns `None` if fewer than 4 observations.
    pub fn half_mean_drift(&self, window: usize) -> Option<f64> {
        let start = self.values.len().saturating_sub(window);
        let tail = &self.values[start..];
        if tail.len() < 4 {
            return None;
        }
        let mid = tail.len() / 2;
        let m1 = tail[..mid].iter().sum::<f64>() / mid as f64;
        let m2 = tail[mid..].iter().sum::<f64>() / (tail.len() - mid) as f64;
        let scale = m1.abs().max(m2.abs()).max(1e-12);
        Some((m2 - m1).abs() / scale)
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        TimeSeries {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.last(), None);
        assert_eq!(ts.window_slope(10), None);
        assert_eq!(ts.half_mean_drift(10), None);
        assert_eq!(ts.window_summary(10).count(), 0);
    }

    #[test]
    fn window_summary_uses_tail() {
        let ts: TimeSeries = (1..=10).map(|i| i as f64).collect();
        let s = ts.window_summary(3);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 9.0);
        // Window larger than series uses all values.
        assert_eq!(ts.window_summary(100).count(), 10);
    }

    #[test]
    fn slope_of_linear_series_is_exact() {
        let ts: TimeSeries = (0..50).map(|i| 2.5 * i as f64 + 1.0).collect();
        let slope = ts.window_slope(50).unwrap();
        assert!((slope - 2.5).abs() < 1e-9, "{slope}");
    }

    #[test]
    fn slope_of_constant_series_is_zero() {
        let ts: TimeSeries = std::iter::repeat_n(7.0, 30).collect();
        assert!(ts.window_slope(30).unwrap().abs() < 1e-12);
    }

    #[test]
    fn drift_detects_trend_and_stationarity() {
        let rising: TimeSeries = (0..100).map(|i| i as f64).collect();
        assert!(rising.half_mean_drift(100).unwrap() > 0.4);
        let flat: TimeSeries = (0..100)
            .map(|i| 5.0 + 0.001 * ((i * 7 % 13) as f64))
            .collect();
        assert!(flat.half_mean_drift(100).unwrap() < 0.01);
    }

    #[test]
    fn range_summary_is_half_open() {
        let ts: TimeSeries = (0..5).map(|i| i as f64).collect();
        let s = ts.range_summary(1, 4);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
