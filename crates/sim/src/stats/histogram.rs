//! Integer-valued histograms for waiting times and bin loads.

use std::fmt;

/// A dense histogram over non-negative integer values.
///
/// Used for waiting-time distributions (values are ages in rounds) and load
/// distributions (values are bin loads, bounded by the capacity `c`). The
/// bucket vector grows on demand, so the histogram never saturates or clips.
///
/// # Examples
///
/// ```
/// use iba_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(3);
/// h.record(7);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.count_at(3), 2);
/// assert_eq!(h.max(), Some(7));
/// assert!((h.mean() - 13.0 / 3.0).abs() < 1e-12);
/// assert_eq!(h.quantile(0.5), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        let idx = value as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Records `weight` observations of `value` at once.
    pub fn record_n(&mut self, value: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        let idx = value as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += weight;
        self.count += weight;
        self.sum += value as u128 * weight as u128;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations equal to `value`.
    pub fn count_at(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Mean of the recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        self.buckets.iter().rposition(|&c| c > 0).map(|i| i as u64)
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        self.buckets.iter().position(|&c| c > 0).map(|i| i as u64)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the recorded values, as the smallest
    /// value `v` such that at least `⌈q·count⌉` observations are ≤ `v`.
    /// Returns `None` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (v, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(v as u64);
            }
        }
        self.max()
    }

    /// Fraction of observations that are greater than `value`
    /// (the empirical tail `P(X > value)`; 0 if empty).
    pub fn tail_above(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let above: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(v, _)| v as u64 > value)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / self.count as f64
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "histogram(empty)");
        }
        write!(
            f,
            "histogram(n={}, mean={:.3}, p50={}, p99={}, max={})",
            self.count,
            self.mean(),
            self.quantile(0.5).unwrap(),
            self.quantile(0.99).unwrap(),
            self.max().unwrap()
        )
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.tail_above(0), 0.0);
        assert_eq!(h.to_string(), "histogram(empty)");
    }

    #[test]
    fn record_and_query() {
        let h: Histogram = [0, 0, 1, 5, 5, 5].into_iter().collect();
        assert_eq!(h.count(), 6);
        assert_eq!(h.count_at(0), 2);
        assert_eq!(h.count_at(5), 3);
        assert_eq!(h.count_at(99), 0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(5));
        assert!((h.mean() - 16.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let h: Histogram = (1..=100).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.01), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let h: Histogram = [1].into_iter().collect();
        h.quantile(1.5);
    }

    #[test]
    fn tail_above_counts_strictly_greater() {
        let h: Histogram = [1, 2, 3, 4].into_iter().collect();
        assert!((h.tail_above(2) - 0.5).abs() < 1e-12);
        assert!((h.tail_above(4) - 0.0).abs() < 1e-12);
        assert!((h.tail_above(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: Histogram = [1, 2].into_iter().collect();
        let b: Histogram = [2, 10].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.count_at(2), 2);
        assert_eq!(a.max(), Some(10));
        assert!((a.mean() - 15.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(4, 3);
        a.record_n(9, 0);
        let b: Histogram = [4, 4, 4].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_skips_zero_buckets() {
        let h: Histogram = [0, 5].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (5, 1)]);
    }
}
