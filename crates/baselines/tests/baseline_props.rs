//! Property-based tests of the baseline processes.

use proptest::prelude::*;

use iba_baselines::adler::AdlerProcess;
use iba_baselines::sequential::{greedy_d, one_choice};
use iba_baselines::{GreedyBatchProcess, ThresholdProcess};
use iba_sim::process::AllocationProcess;
use iba_sim::{SimRng, Simulation};

proptest! {
    #[test]
    fn sequential_allocations_conserve(
        balls in 0u64..2000,
        n in 1usize..256,
        d in 1u32..4,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let alloc = greedy_d(balls, n, d, &mut rng).unwrap();
        let total: u64 = alloc.loads().iter().map(|&l| u64::from(l)).sum();
        prop_assert_eq!(total, balls);
        prop_assert!(u64::from(alloc.max_load()) <= balls);
    }

    #[test]
    fn greedy_d_never_worse_than_one_choice_on_average(
        n in 32usize..512,
        seed in any::<u64>(),
    ) {
        // With the same number of balls, d = 2's max load is at most
        // 1-choice's max load in the vast majority of runs; assert the
        // weaker always-true invariant max_load >= ceil(m/n) for both.
        let m = n as u64;
        let mut rng = SimRng::seed_from(seed);
        let one = one_choice(m, n, &mut rng).unwrap();
        let two = greedy_d(m, n, 2, &mut rng).unwrap();
        prop_assert!(one.max_load() >= 1);
        prop_assert!(two.max_load() >= 1);
        prop_assert!(two.max_load() <= one.max_load() + 2);
    }

    #[test]
    fn threshold_never_accepts_more_than_t_per_round(
        m in 1u64..500,
        n in 1usize..64,
        t in 1u32..5,
        seed in any::<u64>(),
    ) {
        let mut p = ThresholdProcess::new(m, n, t).unwrap();
        let mut rng = SimRng::seed_from(seed);
        let mut prev: Vec<u32> = p.loads().to_vec();
        for _ in 0..20 {
            if p.is_finished() {
                break;
            }
            p.step(&mut rng);
            for (i, (&now, &before)) in p.loads().iter().zip(&prev).enumerate() {
                prop_assert!(now - before <= t, "bin {i} gained more than T");
            }
            prev = p.loads().to_vec();
            prop_assert!(p.conserves_balls());
        }
    }

    #[test]
    fn threshold_always_terminates(
        m in 1u64..300,
        n in 4usize..128,
        seed in any::<u64>(),
    ) {
        let p = ThresholdProcess::new(m, n, 1).unwrap();
        let mut sim = Simulation::new(p, SimRng::seed_from(seed));
        // Worst case needs at most m rounds (at least one ball lands alone
        // ... in fact at least one ball is accepted per round whenever any
        // remain, since every bin accepts at least its first request).
        let rounds = sim.run_to_completion(m + 2);
        prop_assert!(rounds.is_some());
    }

    #[test]
    fn greedy_batch_invariants(
        n in 4usize..128,
        d in 1u32..3,
        seed in any::<u64>(),
    ) {
        let batch = n as u64 / 4;
        let lambda = batch as f64 / n as f64;
        let mut p = GreedyBatchProcess::new(n, d, lambda).unwrap();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..30 {
            let r = p.step(&mut rng);
            prop_assert_eq!(r.generated, batch);
            prop_assert_eq!(r.accepted, batch);
            prop_assert!(r.deleted <= n as u64);
            prop_assert!(p.conserves_balls());
        }
    }

    #[test]
    fn adler_conserves_and_serves_each_ball_once(
        n in 8usize..128,
        d in 1u32..3,
        batch in 0u64..16,
        seed in any::<u64>(),
    ) {
        let mut p = AdlerProcess::new(n, d, batch).unwrap();
        let mut rng = SimRng::seed_from(seed);
        let mut total_served = 0u64;
        for _ in 0..40 {
            let r = p.step(&mut rng);
            total_served += r.deleted;
            prop_assert!(p.conserves_balls());
        }
        // Serving a ball twice would break conservation; double-check the
        // aggregate arithmetic too.
        prop_assert_eq!(total_served + p.balls_in_system() as u64, 40 * batch);
    }
}
