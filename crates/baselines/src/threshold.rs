//! The static parallel THRESHOLD\[T\] protocol (Adler, Chakrabarti,
//! Mitzenmacher, Rasmussen).
//!
//! A collision-style protocol for allocating a *fixed* set of `m` balls:
//! in every round, each still-unallocated ball picks one bin independently
//! and uniformly at random, and every bin accepts at most `T` of its
//! requests this round (the rest are rejected and retry). The protocol
//! terminates when every ball is allocated.
//!
//! Adler et al. prove that THRESHOLD\[1\] with `m = n` terminates after at
//! most `ln ln n + O(1)` rounds w.h.p., which also bounds the maximum load
//! by `ln ln n + O(1)` (a bin gains at most `T` balls per round). The paper
//! under reproduction cites this as the closest static relative of
//! CAPPED's buffer-acceptance rule.

use iba_sim::error::ConfigError;
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;
use iba_sim::stats::Histogram;

/// The THRESHOLD\[T\] static parallel allocation protocol.
///
/// Unlike the infinite processes, this one *terminates*:
/// [`is_finished`](AllocationProcess::is_finished) becomes `true` once all
/// balls are allocated, and [`iba_sim::Simulation::run_to_completion`]
/// drives it to that point.
///
/// # Examples
///
/// ```
/// use iba_baselines::ThresholdProcess;
/// use iba_sim::{Simulation, SimRng};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let p = ThresholdProcess::new(1024, 1024, 1)?; // m = n, T = 1
/// let mut sim = Simulation::new(p, SimRng::seed_from(2));
/// let rounds = sim.run_to_completion(100).expect("terminates quickly");
/// // THRESHOLD[1] finishes in ln ln n + O(1) rounds w.h.p. — far below
/// // the 100-round budget.
/// assert!(rounds < 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdProcess {
    bins: usize,
    threshold: u32,
    unallocated: u64,
    loads: Vec<u32>,
    accepted_this_round: Vec<u32>,
    round: u64,
    initial_balls: u64,
}

impl ThresholdProcess {
    /// Creates a THRESHOLD\[T\] instance with `m` balls, `n` bins and
    /// per-round acceptance threshold `T`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n = 0` or `T = 0`.
    pub fn new(balls: u64, bins: usize, threshold: u32) -> Result<Self, ConfigError> {
        if bins == 0 {
            return Err(ConfigError::ZeroBins);
        }
        if threshold == 0 {
            return Err(ConfigError::OutOfDomain {
                name: "threshold",
                domain: "T >= 1",
            });
        }
        Ok(ThresholdProcess {
            bins,
            threshold,
            unallocated: balls,
            loads: vec![0; bins],
            accepted_this_round: vec![0; bins],
            round: 0,
            initial_balls: balls,
        })
    }

    /// The acceptance threshold `T`.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Number of balls still unallocated.
    pub fn unallocated(&self) -> u64 {
        self.unallocated
    }

    /// Final (or current) loads of all bins.
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Maximum bin load so far.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Histogram of current bin loads.
    pub fn load_histogram(&self) -> Histogram {
        self.loads.iter().map(|&l| l as u64).collect()
    }

    /// Ball-conservation invariant: allocated + unallocated = m.
    pub fn conserves_balls(&self) -> bool {
        let allocated: u64 = self.loads.iter().map(|&l| l as u64).sum();
        allocated + self.unallocated == self.initial_balls
    }
}

impl AllocationProcess for ThresholdProcess {
    fn bins(&self) -> usize {
        self.bins
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn pool_size(&self) -> usize {
        self.unallocated as usize
    }

    fn step(&mut self, rng: &mut SimRng) -> RoundReport {
        self.round += 1;
        let thrown = self.unallocated;
        self.accepted_this_round.fill(0);
        let mut accepted = 0u64;
        let mut still_unallocated = 0u64;
        for _ in 0..thrown {
            let bin = rng.uniform_bin(self.bins);
            if self.accepted_this_round[bin] < self.threshold {
                self.accepted_this_round[bin] += 1;
                self.loads[bin] += 1;
                accepted += 1;
            } else {
                still_unallocated += 1;
            }
        }
        self.unallocated = still_unallocated;
        let max_load = self.max_load() as u64;
        RoundReport {
            round: self.round,
            generated: 0,
            thrown,
            accepted,
            deleted: 0,
            failed_deletions: 0,
            pool_size: self.unallocated,
            buffered: self.initial_balls - self.unallocated,
            max_load,
            waiting_times: Vec::new(),
        }
    }

    fn label(&self) -> String {
        format!(
            "threshold(m={}, n={}, T={})",
            self.initial_balls, self.bins, self.threshold
        )
    }

    fn is_finished(&self) -> bool {
        self.unallocated == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_sim::Simulation;

    #[test]
    fn construction_validates() {
        assert!(ThresholdProcess::new(10, 0, 1).is_err());
        assert!(ThresholdProcess::new(10, 10, 0).is_err());
        assert!(ThresholdProcess::new(10, 10, 1).is_ok());
    }

    #[test]
    fn terminates_and_conserves() {
        let p = ThresholdProcess::new(512, 512, 1).unwrap();
        let mut sim = Simulation::new(p, SimRng::seed_from(1));
        let rounds = sim.run_to_completion(200).expect("must terminate");
        assert!(rounds > 0);
        let p = sim.into_process();
        assert!(p.is_finished());
        assert!(p.conserves_balls());
        assert_eq!(p.unallocated(), 0);
        let total: u64 = p.loads().iter().map(|&l| l as u64).sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn max_load_bounded_by_rounds_times_threshold() {
        let p = ThresholdProcess::new(1024, 1024, 1).unwrap();
        let mut sim = Simulation::new(p, SimRng::seed_from(2));
        let rounds = sim.run_to_completion(200).unwrap();
        let p = sim.into_process();
        assert!(p.max_load() as u64 <= rounds);
    }

    #[test]
    fn threshold_one_finishes_in_loglog_rounds() {
        // ln ln 4096 ≈ 2.1; the O(1) additive constant makes ~6-10 typical.
        let p = ThresholdProcess::new(4096, 4096, 1).unwrap();
        let mut sim = Simulation::new(p, SimRng::seed_from(3));
        let rounds = sim.run_to_completion(64).expect("terminates");
        assert!(rounds <= 16, "took {rounds} rounds");
    }

    #[test]
    fn higher_threshold_terminates_no_slower() {
        let mut rounds_by_t = Vec::new();
        for t in [1u32, 2, 4] {
            let p = ThresholdProcess::new(2048, 2048, t).unwrap();
            let mut sim = Simulation::new(p, SimRng::seed_from(4));
            rounds_by_t.push(sim.run_to_completion(128).unwrap());
        }
        assert!(rounds_by_t[1] <= rounds_by_t[0]);
        assert!(rounds_by_t[2] <= rounds_by_t[1]);
    }

    #[test]
    fn per_round_acceptance_respects_threshold() {
        let mut p = ThresholdProcess::new(1000, 4, 2).unwrap();
        let mut rng = SimRng::seed_from(5);
        let before = p.loads().to_vec();
        p.step(&mut rng);
        for (i, &after) in p.loads().iter().enumerate() {
            assert!(after - before[i] <= 2, "bin {i} accepted more than T");
        }
    }

    #[test]
    fn zero_balls_is_immediately_finished() {
        let p = ThresholdProcess::new(0, 8, 1).unwrap();
        assert!(p.is_finished());
        let mut sim = Simulation::new(p, SimRng::seed_from(6));
        assert_eq!(sim.run_to_completion(10), Some(0));
    }

    #[test]
    fn report_fields_are_consistent() {
        let mut p = ThresholdProcess::new(100, 8, 1).unwrap();
        let mut rng = SimRng::seed_from(7);
        let r = p.step(&mut rng);
        assert_eq!(r.thrown, 100);
        assert_eq!(r.accepted + r.pool_size, 100);
        assert_eq!(r.buffered, r.accepted);
        assert!(r.max_load <= 1);
    }
}
