//! Baseline balls-into-bins processes the paper compares against.
//!
//! Three families of baselines appear in the paper's related-work and
//! comparison discussion; all are implemented here from their original
//! descriptions so the benchmark harness can reproduce the comparison
//! claims of Sections I-B and V:
//!
//! - [`greedy_batch`] — the **batched parallel GREEDY\[d\]** process with
//!   "leaky bins" of Berenbrink, Friedetzky, Kling, Mallmann-Trenn, Nagel,
//!   Wastell (PODC 2016 / Algorithmica 2018): `λn` balls per round, each
//!   committing to the least-loaded of `d` sampled bins *as measured at the
//!   beginning of the round*, unbounded queues, one deletion per non-empty
//!   bin per round. For constant λ its waiting time is Θ(log n) (d = 1 and
//!   d = 2) — the quantity CAPPED improves to `log log n + O(1)`.
//! - [`threshold`] — the **static parallel THRESHOLD\[T\]** protocol of
//!   Adler, Chakrabarti, Mitzenmacher, Rasmussen: `m` balls retry
//!   collision-style, every bin accepting at most `T` balls per round;
//!   THRESHOLD\[1\] finishes in `ln ln n + O(1)` rounds w.h.p.
//! - [`sequential`] — the **classical sequential** allocations: GREEDY\[d\]
//!   of Azar, Broder, Karlin, Upfal (max load `log log n / log d + O(1)`
//!   for d ≥ 2) and the 1-choice benchmark (`Θ(log n / log log n)` for
//!   m = n).
//! - [`adler`] — the **infinite parallel d-copy process** of Adler,
//!   Berenbrink, Schröder (ESA 1998): constant expected waiting time but
//!   only under the restrictive arrival bound `m < n/(3de)` — the
//!   limitation CAPPED removes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adler;
pub mod greedy_batch;
pub mod sequential;
pub mod threshold;

pub use adler::AdlerProcess;
pub use greedy_batch::GreedyBatchProcess;
pub use threshold::ThresholdProcess;
