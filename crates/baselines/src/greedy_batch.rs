//! Batched parallel GREEDY\[d\] with leaky bins (Berenbrink et al.,
//! PODC 2016 / Algorithmica 2018).
//!
//! The main comparison baseline of the paper. Model:
//!
//! - `n` bins, each with an **unbounded** FIFO queue;
//! - each round a batch of `λn` new balls arrives;
//! - every ball samples `d` bins independently and uniformly at random and
//!   commits to the least-loaded of them, where load is the queue length at
//!   the **beginning of the round** — balls of the current batch are not
//!   visible to each other (this is the crux of why parallel GREEDY loses
//!   the power of two choices: up to Θ(log n / log log n) balls of one
//!   batch can pile onto a single bin);
//! - at the end of the round every non-empty bin deletes its first ball.
//!
//! Since queues are unbounded, no ball is ever rejected: the pool is always
//! empty and a ball's waiting time equals the number of rounds it spends in
//! its queue. For constant λ the maximum waiting time is Θ(log n) for both
//! d = 1 and d = 2 (with different λ-dependence); CAPPED(c, λ) reduces this
//! to `log log n + O(1)` — the headline comparison of the paper (see the
//! `CMP` experiment).
//!
//! CAPPED(∞, λ) coincides with GREEDY\[1\] (paper, Section II); the
//! integration tests verify the two implementations produce identically
//! distributed trajectories given the same random choices.

use iba_sim::arrivals::ArrivalModel;
use iba_sim::error::ConfigError;
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;
use iba_sim::stats::Histogram;

use std::collections::VecDeque;

/// The batched parallel GREEDY\[d\] process.
///
/// # Examples
///
/// ```
/// use iba_baselines::GreedyBatchProcess;
/// use iba_sim::{AllocationProcess, SimRng};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let mut p = GreedyBatchProcess::new(256, 2, 0.75)?; // d = 2
/// let mut rng = SimRng::seed_from(1);
/// let report = p.step(&mut rng);
/// assert_eq!(report.generated, 192);
/// assert_eq!(report.pool_size, 0); // unbounded queues never reject
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GreedyBatchProcess {
    bins: usize,
    choices: u32,
    lambda: f64,
    arrivals: ArrivalModel,
    queues: Vec<VecDeque<u64>>,
    /// Queue lengths at the beginning of the current round (the load the
    /// balls of a batch observe).
    start_loads: Vec<u32>,
    /// Fault-injection mask: an offline bin is excluded from every ball's
    /// candidate comparison and stops serving; its queue is frozen.
    offline: Vec<bool>,
    /// Generation labels of balls whose sampled candidates were *all*
    /// offline; they are re-thrown (with fresh samples) next round.
    /// Reported as the pool — GREEDY's only source of unallocated balls.
    parked: Vec<u64>,
    round: u64,
    total_generated: u64,
    total_deleted: u64,
    /// Largest number of balls of the *last* batch that committed to a
    /// single bin (the batch-pileup quantity of the paper's Section I:
    /// batch members cannot see each other, so up to
    /// Θ(log n / log log n) of them can land on one bin even for d ≥ 2).
    last_batch_pileup: u64,
}

impl GreedyBatchProcess {
    /// Creates a GREEDY\[d\] process with `n` bins, `d` choices per ball
    /// and deterministic arrivals of `λn` balls per round.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n = 0`, `d = 0`, `λ ∉ [0, 1 − 1/n]` or
    /// `λn ∉ ℕ`.
    pub fn new(bins: usize, choices: u32, lambda: f64) -> Result<Self, ConfigError> {
        if choices == 0 {
            return Err(ConfigError::OutOfDomain {
                name: "choices",
                domain: "d >= 1",
            });
        }
        let arrivals = ArrivalModel::deterministic_rate(bins, lambda)?;
        Ok(GreedyBatchProcess {
            bins,
            choices,
            lambda,
            arrivals,
            queues: (0..bins).map(|_| VecDeque::new()).collect(),
            start_loads: vec![0; bins],
            offline: vec![false; bins],
            parked: Vec::new(),
            round: 0,
            total_generated: 0,
            total_deleted: 0,
            last_batch_pileup: 0,
        })
    }

    /// Replaces the arrival model (for arrival-model ablations).
    pub fn with_arrivals(mut self, arrivals: ArrivalModel) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Number of choices `d` per ball.
    pub fn choices(&self) -> u32 {
        self.choices
    }

    /// Injection rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Current load (queue length) of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn load(&self, i: usize) -> usize {
        self.queues[i].len()
    }

    /// Current loads of all bins.
    pub fn loads(&self) -> Vec<usize> {
        self.queues.iter().map(VecDeque::len).collect()
    }

    /// Histogram of current bin loads.
    pub fn load_histogram(&self) -> Histogram {
        self.queues.iter().map(|q| q.len() as u64).collect()
    }

    /// Total number of queued balls (the system load of the PODC'16
    /// analysis).
    pub fn system_load(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Number of currently offline bins.
    pub fn offline_count(&self) -> usize {
        self.offline.iter().filter(|&&o| o).count()
    }

    /// Ball-conservation invariant.
    pub fn conserves_balls(&self) -> bool {
        self.total_generated
            == self.total_deleted + self.system_load() as u64 + self.parked.len() as u64
    }

    /// Largest number of last-round batch members that committed to one
    /// bin — the intra-batch pileup the paper's introduction blames for
    /// parallel GREEDY losing the power of two choices.
    pub fn last_batch_pileup(&self) -> u64 {
        self.last_batch_pileup
    }

    /// Executes one round with pre-drawn choices: ball `i` of the batch
    /// uses bins `choices[i·d .. (i+1)·d]` and commits to the least loaded
    /// (by start-of-round load; ties toward the earlier entry). Used by the
    /// equivalence test against CAPPED(∞, λ).
    ///
    /// # Panics
    ///
    /// Panics if the arrival model is not deterministic or `choices.len()`
    /// is not `batch · d`.
    pub fn step_with_choices(&mut self, choices: &[usize]) -> RoundReport {
        let ArrivalModel::Deterministic { batch } = self.arrivals else {
            panic!("step_with_choices requires the deterministic arrival model");
        };
        let d = self.choices as usize;
        assert_eq!(
            choices.len(),
            batch as usize * d,
            "need exactly d choices per generated ball"
        );
        assert!(
            self.parked.is_empty() && self.offline.iter().all(|&o| !o),
            "step_with_choices does not support fault injection"
        );
        let round = self.begin_round(batch);
        for ball in 0..batch as usize {
            let candidates = &choices[ball * d..(ball + 1) * d];
            let mut best = candidates[0];
            for &candidate in &candidates[1..] {
                if self.start_loads[candidate] < self.start_loads[best] {
                    best = candidate;
                }
            }
            self.queues[best].push_back(round);
        }
        self.record_batch_pileup();
        self.finish_round(round, batch, batch)
    }

    /// Advances the round counter, books the generated balls and snapshots
    /// the start-of-round loads the batch will measure against.
    fn begin_round(&mut self, generated: u64) -> u64 {
        self.round += 1;
        self.total_generated += generated;
        for (s, q) in self.start_loads.iter_mut().zip(&self.queues) {
            *s = q.len() as u32;
        }
        self.round
    }

    /// Records the largest per-bin commitment count of the current batch
    /// (balls of the current round at the back of each queue).
    fn record_batch_pileup(&mut self) {
        self.last_batch_pileup = self
            .queues
            .iter()
            .zip(&self.start_loads)
            .map(|(q, &start)| (q.len() - start as usize) as u64)
            .max()
            .unwrap_or(0);
    }

    /// Runs the deletion stage and assembles the report. `thrown` is the
    /// number of balls that competed for allocation this round (batch +
    /// re-thrown parked balls); the balls still parked afterwards are the
    /// pool.
    fn finish_round(&mut self, round: u64, generated: u64, thrown: u64) -> RoundReport {
        let mut waiting_times = Vec::with_capacity(self.bins);
        let mut failed_deletions = 0u64;
        let mut buffered = 0u64;
        let mut max_load = 0u64;
        for (q, &offline) in self.queues.iter_mut().zip(&self.offline) {
            if offline {
                // A crashed bin neither serves nor counts as a failed
                // deletion *attempt* — it makes none (same semantics as
                // CAPPED's fault mask).
                buffered += q.len() as u64;
                max_load = max_load.max(q.len() as u64);
                continue;
            }
            match q.pop_front() {
                Some(label) => {
                    waiting_times.push(round - label);
                    self.total_deleted += 1;
                }
                None => failed_deletions += 1,
            }
            let load = q.len() as u64;
            buffered += load;
            max_load = max_load.max(load);
        }
        let pool_size = self.parked.len() as u64;
        RoundReport {
            round,
            generated,
            thrown,
            accepted: thrown - pool_size,
            deleted: waiting_times.len() as u64,
            failed_deletions,
            pool_size,
            buffered,
            max_load,
            waiting_times,
        }
    }
}

impl AllocationProcess for GreedyBatchProcess {
    fn bins(&self) -> usize {
        self.bins
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn pool_size(&self) -> usize {
        // Unbounded queues allocate every ball on arrival — unless fault
        // injection parked it (all sampled candidates offline).
        self.parked.len()
    }

    fn step(&mut self, rng: &mut SimRng) -> RoundReport {
        let generated = self.arrivals.sample(rng);
        let round = self.begin_round(generated);

        // Allocation: least-loaded *online* bin among d samples, by
        // start-of-round load (ties toward the earlier sample). Every ball
        // draws exactly d samples whether or not bins are offline, so the
        // fault-free trajectory is bit-identical to the mask-free code.
        // Parked balls re-throw first (they are the oldest).
        let n = self.bins;
        let d = self.choices;
        let parked = std::mem::take(&mut self.parked);
        let thrown = parked.len() as u64 + generated;
        let labels = parked
            .into_iter()
            .chain(std::iter::repeat_n(round, generated as usize));
        for label in labels {
            let mut best: Option<usize> = None;
            for _ in 0..d {
                let candidate = rng.uniform_bin(n);
                if self.offline[candidate] {
                    continue;
                }
                best = match best {
                    Some(b) if self.start_loads[candidate] >= self.start_loads[b] => Some(b),
                    _ => Some(candidate),
                };
            }
            match best {
                Some(bin) => self.queues[bin].push_back(label),
                None => self.parked.push(label), // every candidate offline
            }
        }
        self.record_batch_pileup();

        self.finish_round(round, generated, thrown)
    }

    fn label(&self) -> String {
        format!(
            "greedy-batch(n={}, d={}, λ={})",
            self.bins, self.choices, self.lambda
        )
    }
}

/// GREEDY\[d\] under fault injection: an offline bin is excluded from
/// candidate comparisons and freezes its queue; a ball whose `d` samples
/// are all offline is *parked* (reported as the pool) and re-thrown next
/// round. Queues are unbounded, so capacity degradation is a no-op (the
/// [`FaultTolerant::set_bin_capacity`] default).
impl iba_sim::faults::FaultTolerant for GreedyBatchProcess {
    fn crash_bin(&mut self, i: usize) {
        self.offline[i] = true;
    }

    fn recover_bin(&mut self, i: usize) {
        self.offline[i] = false;
    }

    fn offline_bins(&self) -> usize {
        self.offline_count()
    }

    fn surge_pool(&mut self, extra: u64) {
        let label = self.round;
        self.parked
            .extend(std::iter::repeat_n(label, extra as usize));
        self.total_generated += extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(n: usize, d: u32, lambda: f64) -> GreedyBatchProcess {
        GreedyBatchProcess::new(n, d, lambda).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(GreedyBatchProcess::new(0, 1, 0.5).is_err());
        assert!(GreedyBatchProcess::new(10, 0, 0.5).is_err());
        assert!(GreedyBatchProcess::new(10, 1, 0.33).is_err());
        assert!(GreedyBatchProcess::new(10, 2, 0.5).is_ok());
    }

    #[test]
    fn no_ball_is_ever_rejected() {
        let mut p = process(64, 1, 0.75);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            let r = p.step(&mut rng);
            assert_eq!(r.pool_size, 0);
            assert_eq!(r.accepted, r.generated);
            assert!(r.conserves_balls());
        }
        assert!(p.conserves_balls());
    }

    #[test]
    fn system_load_is_stationary_for_subcritical_lambda() {
        // λ < 1: the system is positive recurrent (PODC'16); the load must
        // not grow linearly in time.
        let mut p = process(128, 1, 0.5);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..500 {
            p.step(&mut rng);
        }
        let load_500 = p.system_load();
        for _ in 0..500 {
            p.step(&mut rng);
        }
        let load_1000 = p.system_load();
        // Allow stochastic fluctuation but rule out linear growth
        // (λn/2 per round would add 32 000 balls).
        assert!(
            (load_1000 as i64 - load_500 as i64).unsigned_abs() < 2_000,
            "{load_500} -> {load_1000}"
        );
    }

    #[test]
    fn two_choices_beat_one_choice_on_max_load() {
        let mut one = process(256, 1, 0.75);
        let mut two = process(256, 2, 0.75);
        let mut rng1 = SimRng::seed_from(3);
        let mut rng2 = SimRng::seed_from(4);
        let mut max1 = 0u64;
        let mut max2 = 0u64;
        for i in 0..600 {
            let r1 = one.step(&mut rng1);
            let r2 = two.step(&mut rng2);
            if i >= 300 {
                max1 = max1.max(r1.max_load);
                max2 = max2.max(r2.max_load);
            }
        }
        assert!(
            max2 <= max1,
            "2-choice max load {max2} should not exceed 1-choice {max1}"
        );
    }

    #[test]
    fn waiting_time_is_queue_delay() {
        // One bin: every ball queues in bin 0; FIFO delay grows with the
        // backlog. λn = 0 keeps it trivial: no balls, no waits.
        let mut p = process(4, 1, 0.0);
        let mut rng = SimRng::seed_from(5);
        let r = p.step(&mut rng);
        assert!(r.waiting_times.is_empty());
        assert_eq!(r.failed_deletions, 4);
    }

    #[test]
    fn step_with_choices_is_deterministic() {
        let mut p = process(4, 2, 0.5); // batch = 2, d = 2
        let r = p.step_with_choices(&[0, 1, 0, 1]); // both balls pick bins {0,1}
                                                    // Both commit to bin 0 (equal start loads, tie toward first).
        assert_eq!(r.generated, 2);
        assert_eq!(r.max_load, 1); // bin 0 got 2, served 1
        let loads = p.loads();
        assert_eq!(loads[0], 1);
        assert_eq!(loads[1], 0);
    }

    #[test]
    fn step_with_choices_uses_start_of_round_loads() {
        let mut p = process(4, 2, 0.5);
        // Round 1: fill bin 0 with two balls.
        p.step_with_choices(&[0, 0, 0, 0]);
        assert_eq!(p.load(0), 1);
        // Round 2: ball A picks {0, 1} -> commits to empty bin 1; ball B
        // picks {1, 0} -> start loads are (1, 0), so it also commits to
        // bin 1 even though ball A just landed there (batch invisibility).
        let r = p.step_with_choices(&[0, 1, 1, 0]);
        assert_eq!(r.max_load, 1); // bin 1 received 2, served 1
        assert_eq!(p.load(1), 1);
    }

    #[test]
    #[should_panic(expected = "d choices per generated ball")]
    fn step_with_choices_wrong_len_panics() {
        let mut p = process(4, 2, 0.5);
        p.step_with_choices(&[0, 1]);
    }

    #[test]
    fn label_mentions_parameters() {
        let p = process(8, 2, 0.75);
        assert!(p.label().contains("d=2"));
    }

    #[test]
    fn offline_bin_freezes_queue_and_resumes_on_recovery() {
        use iba_sim::faults::FaultTolerant;
        let mut p = process(32, 1, 0.75);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..30 {
            p.step(&mut rng);
        }
        // Crash a bin with a backlog (build one if necessary).
        let victim = p.loads().iter().position(|&l| l > 0).unwrap_or(0);
        let frozen_load = p.load(victim);
        p.crash_bin(victim);
        for _ in 0..10 {
            let r = p.step(&mut rng);
            assert!(r.conserves_balls());
            assert!(p.conserves_balls());
            assert_eq!(
                p.load(victim),
                frozen_load,
                "offline bin neither serves nor receives"
            );
        }
        let held = p.load(victim);
        p.recover_bin(victim);
        let mut served = false;
        for _ in 0..held + 5 {
            p.step(&mut rng);
            if p.load(victim) < held {
                served = true;
                break;
            }
        }
        assert!(served, "recovered bin resumes FIFO service");
        assert!(p.conserves_balls());
    }

    #[test]
    fn total_outage_parks_every_ball() {
        use iba_sim::faults::FaultTolerant;
        let mut p = process(8, 2, 0.5); // batch = 4
        for i in 0..8 {
            p.crash_bin(i);
        }
        let mut rng = SimRng::seed_from(8);
        let r = p.step(&mut rng);
        assert_eq!(r.accepted, 0);
        assert_eq!(r.pool_size, 4, "all candidates offline: balls park");
        assert_eq!(r.deleted, 0);
        assert!(r.conserves_balls());
        assert!(p.conserves_balls());
        // Parked balls re-throw after recovery and carry their true age.
        for i in 0..8 {
            p.recover_bin(i);
        }
        let r = p.step(&mut rng);
        assert_eq!(r.thrown, 8, "4 parked + 4 new");
        assert_eq!(r.pool_size, 0);
        assert!(p.conserves_balls());
    }

    #[test]
    fn surge_pool_counts_toward_conservation() {
        use iba_sim::faults::FaultTolerant;
        let mut p = process(16, 1, 0.5);
        p.surge_pool(100);
        assert_eq!(iba_sim::AllocationProcess::pool_size(&p), 100);
        assert!(p.conserves_balls());
        let mut rng = SimRng::seed_from(9);
        let r = p.step(&mut rng);
        assert_eq!(r.thrown, 108, "100 surged + 8 new");
        assert_eq!(r.pool_size, 0, "online bins absorb everything");
        assert!(p.conserves_balls());
    }

    #[test]
    fn fault_free_trajectory_is_unchanged_by_fault_plumbing() {
        // The offline-aware sampling loop must draw the same RNG sequence
        // and commit every ball to the same bin as the original code;
        // cross-check against step_with_choices on a replayed stream.
        let mut sampled = process(64, 2, 0.75);
        let mut replayed = process(64, 2, 0.75);
        let mut rng = SimRng::seed_from(10);
        let mut replay_rng = SimRng::seed_from(10);
        for _ in 0..50 {
            let r1 = sampled.step(&mut rng);
            let choices: Vec<usize> = (0..r1.generated as usize * 2)
                .map(|_| replay_rng.uniform_bin(64))
                .collect();
            let r2 = replayed.step_with_choices(&choices);
            assert_eq!(r1, r2);
        }
        assert_eq!(sampled.loads(), replayed.loads());
    }

    #[test]
    fn load_histogram_counts_all_bins() {
        let mut p = process(16, 1, 0.75);
        let mut rng = SimRng::seed_from(6);
        for _ in 0..50 {
            p.step(&mut rng);
        }
        assert_eq!(p.load_histogram().count(), 16);
    }
}
