//! The infinite parallel job-allocation process of Adler, Berenbrink and
//! Schröder (ESA 1998).
//!
//! The earliest of the infinite parallel processes the paper discusses:
//! each round, `m < n/(3de)` balls arrive; every ball places a **copy** of
//! itself into the FIFO queues of `d` random bins. After each round, every
//! non-empty bin serves the first ball of its queue, and the served ball's
//! surviving copies are removed from the other queues. The expected
//! waiting time is O(1) and the maximum waiting time is
//! `log log n / log d + O(1)` w.h.p. — but only under the restrictive
//! arrival bound `m < n/(3de)`, "the major drawback of this process"
//! (paper, Section I-A). CAPPED removes that restriction.
//!
//! The copy-deletion step makes this the most coordination-heavy baseline:
//! implementing it faithfully shows exactly what CAPPED's "one random
//! choice, bounded buffer" design saves.

use iba_sim::error::ConfigError;
use iba_sim::process::{AllocationProcess, RoundReport};
use iba_sim::rng::SimRng;

use std::collections::VecDeque;

/// A ball copy: (ball id, arrival round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Copy {
    ball: u64,
    label: u64,
}

/// The Adler–Berenbrink–Schröder d-copy process.
///
/// # Examples
///
/// ```
/// use iba_baselines::adler::AdlerProcess;
/// use iba_sim::{AllocationProcess, SimRng};
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// // m = 16 balls per round into n = 1024 bins with d = 2 copies:
/// // well within the m < n/(3de) stability region (m < 62).
/// let mut p = AdlerProcess::new(1024, 2, 16)?;
/// let mut rng = SimRng::seed_from(1);
/// let report = p.step(&mut rng);
/// assert_eq!(report.generated, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdlerProcess {
    bins: usize,
    copies: u32,
    batch: u64,
    queues: Vec<VecDeque<Copy>>,
    /// Balls currently in the system (not yet served), with arrival round.
    alive: std::collections::HashMap<u64, u64>,
    next_ball: u64,
    round: u64,
    total_generated: u64,
    total_served: u64,
}

impl AdlerProcess {
    /// Creates the process with `m = batch` arrivals per round and `d`
    /// copies per ball.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n = 0` or `d = 0`.
    pub fn new(bins: usize, copies: u32, batch: u64) -> Result<Self, ConfigError> {
        if bins == 0 {
            return Err(ConfigError::ZeroBins);
        }
        if copies == 0 {
            return Err(ConfigError::OutOfDomain {
                name: "copies",
                domain: "d >= 1",
            });
        }
        Ok(AdlerProcess {
            bins,
            copies,
            batch,
            queues: (0..bins).map(|_| VecDeque::new()).collect(),
            alive: std::collections::HashMap::new(),
            next_ball: 0,
            round: 0,
            total_generated: 0,
            total_served: 0,
        })
    }

    /// Whether the configuration satisfies the `m < n/(3de)` stability
    /// condition of the original analysis.
    pub fn within_stability_region(&self) -> bool {
        (self.batch as f64) < self.bins as f64 / (3.0 * self.copies as f64 * std::f64::consts::E)
    }

    /// Number of balls currently in the system.
    pub fn balls_in_system(&self) -> usize {
        self.alive.len()
    }

    /// Ball-conservation invariant.
    pub fn conserves_balls(&self) -> bool {
        self.total_generated == self.total_served + self.alive.len() as u64
    }

    /// The arrival batch size `m`.
    pub fn batch(&self) -> u64 {
        self.batch
    }
}

impl AllocationProcess for AdlerProcess {
    fn bins(&self) -> usize {
        self.bins
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn pool_size(&self) -> usize {
        0 // every ball is queued (as d copies) on arrival
    }

    fn step(&mut self, rng: &mut SimRng) -> RoundReport {
        self.round += 1;
        let round = self.round;

        // Arrivals: every ball enqueues d copies in d random bins
        // (distinct bins in the original; sampling with replacement and
        // deduplicating per ball keeps the distribution near-identical for
        // d ≪ n and is what the follow-up analyses assume).
        for _ in 0..self.batch {
            let ball = self.next_ball;
            self.next_ball += 1;
            self.alive.insert(ball, round);
            self.total_generated += 1;
            let mut first = usize::MAX;
            for _ in 0..self.copies {
                let bin = rng.uniform_bin(self.bins);
                if bin == first {
                    continue; // collapsed duplicate choice
                }
                if first == usize::MAX {
                    first = bin;
                }
                self.queues[bin].push_back(Copy { ball, label: round });
            }
        }

        // Service: every non-empty bin pops copies until it finds one
        // whose ball is still alive, and serves it. (Copies of previously
        // served balls are removed lazily here rather than eagerly at
        // service time — observationally identical and O(1) amortized.)
        let mut waiting_times = Vec::new();
        let mut failed_deletions = 0u64;
        for q in &mut self.queues {
            let mut served = false;
            while let Some(copy) = q.front().copied() {
                if let Some(&label) = self.alive.get(&copy.ball) {
                    // Serve this ball: remove from alive; its remaining
                    // copies become stale and are skipped lazily.
                    self.alive.remove(&copy.ball);
                    q.pop_front();
                    waiting_times.push(round - label);
                    self.total_served += 1;
                    served = true;
                    break;
                }
                q.pop_front(); // stale copy of an already-served ball
            }
            if !served {
                failed_deletions += 1;
            }
        }

        // System statistics (count balls, not copies).
        let buffered = self.alive.len() as u64;
        let max_load = self
            .queues
            .iter()
            .map(|q| {
                q.iter()
                    .filter(|c| self.alive.contains_key(&c.ball))
                    .count() as u64
            })
            .max()
            .unwrap_or(0);

        RoundReport {
            round,
            generated: self.batch,
            thrown: self.batch,
            accepted: self.batch,
            deleted: waiting_times.len() as u64,
            failed_deletions,
            pool_size: 0,
            buffered,
            max_load,
            waiting_times,
        }
    }

    fn label(&self) -> String {
        format!(
            "adler(n={}, d={}, m={})",
            self.bins, self.copies, self.batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(AdlerProcess::new(0, 2, 1).is_err());
        assert!(AdlerProcess::new(10, 0, 1).is_err());
        assert!(AdlerProcess::new(10, 2, 1).is_ok());
    }

    #[test]
    fn stability_region_check() {
        // n/(3de) with n=1024, d=2: 1024/16.31 ≈ 62.8.
        let stable = AdlerProcess::new(1024, 2, 62).unwrap();
        assert!(stable.within_stability_region());
        let unstable = AdlerProcess::new(1024, 2, 63).unwrap();
        assert!(!unstable.within_stability_region());
    }

    #[test]
    fn conserves_balls_over_many_rounds() {
        let mut p = AdlerProcess::new(256, 2, 8).unwrap();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..300 {
            let r = p.step(&mut rng);
            assert!(p.conserves_balls());
            assert!(r.deleted <= 256);
        }
    }

    #[test]
    fn stable_configuration_has_bounded_backlog() {
        let n = 1024;
        let mut p = AdlerProcess::new(n, 2, 32).unwrap(); // well within region
        assert!(p.within_stability_region());
        let mut rng = SimRng::seed_from(2);
        for _ in 0..500 {
            p.step(&mut rng);
        }
        // Expected constant waiting time => backlog stays O(m).
        assert!(
            p.balls_in_system() < 5 * 32,
            "backlog {} too large",
            p.balls_in_system()
        );
    }

    #[test]
    fn waiting_times_are_small_in_stability_region() {
        let mut p = AdlerProcess::new(1024, 2, 32).unwrap();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            p.step(&mut rng);
        }
        let mut max_wait = 0;
        for _ in 0..300 {
            let r = p.step(&mut rng);
            max_wait = max_wait.max(r.max_waiting_time().unwrap_or(0));
        }
        // log log n / log d + O(1) ≈ 3.3 + O(1) for n = 1024, d = 2.
        assert!(max_wait <= 10, "max wait {max_wait}");
    }

    #[test]
    fn served_ball_copies_are_skipped() {
        // d = 2 copies of one ball into bins 0 and 1 would double-serve
        // the ball if stale copies were not skipped.
        let mut p = AdlerProcess::new(4, 2, 1).unwrap();
        let mut rng = SimRng::seed_from(4);
        let mut total_served = 0u64;
        for _ in 0..50 {
            let r = p.step(&mut rng);
            total_served += r.deleted;
        }
        assert!(total_served <= p.total_generated);
        assert!(p.conserves_balls());
    }

    #[test]
    fn zero_batch_is_idle() {
        let mut p = AdlerProcess::new(8, 2, 0).unwrap();
        let mut rng = SimRng::seed_from(5);
        let r = p.step(&mut rng);
        assert_eq!(r.deleted, 0);
        assert_eq!(r.failed_deletions, 8);
        assert_eq!(p.balls_in_system(), 0);
    }
}
