//! Classical sequential static allocations (Azar et al.; Raab & Steger).
//!
//! These are not round-based processes but one-shot allocations of `m`
//! balls, used as reference points: GREEDY\[d\] achieves max load
//! `m/n + log log n / log d + O(1)` for `d ≥ 2`, while the 1-choice
//! allocation suffers `Θ(log n / log log n)` for `m = n` (Raab & Steger) —
//! the gap known as the *power of two choices*, which the paper's parallel
//! setting partially forfeits and CAPPED recovers by other means.

use iba_sim::error::ConfigError;
use iba_sim::rng::SimRng;
use iba_sim::stats::Histogram;

/// Result of a sequential static allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequentialAllocation {
    loads: Vec<u32>,
    balls: u64,
    choices: u32,
}

impl SequentialAllocation {
    /// Final loads of all bins.
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Maximum bin load.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Number of empty bins.
    pub fn empty_bins(&self) -> usize {
        self.loads.iter().filter(|&&l| l == 0).count()
    }

    /// Histogram of bin loads.
    pub fn load_histogram(&self) -> Histogram {
        self.loads.iter().map(|&l| l as u64).collect()
    }

    /// Number of balls allocated.
    pub fn balls(&self) -> u64 {
        self.balls
    }

    /// Number of choices per ball.
    pub fn choices(&self) -> u32 {
        self.choices
    }
}

/// Allocates `m` balls into `n` bins sequentially with Azar et al.'s
/// GREEDY\[d\]: each ball samples `d` bins independently and uniformly at
/// random and commits to the least loaded (ties toward the first sample).
///
/// `d = 1` is the classical single-choice allocation.
///
/// # Errors
///
/// Returns a [`ConfigError`] if `n = 0` or `d = 0`.
///
/// # Examples
///
/// ```
/// use iba_baselines::sequential::greedy_d;
/// use iba_sim::SimRng;
///
/// # fn main() -> Result<(), iba_sim::error::ConfigError> {
/// let mut rng = SimRng::seed_from(9);
/// let alloc = greedy_d(1024, 1024, 2, &mut rng)?;
/// // Power of two choices: max load log log n / log 2 + O(1) — tiny.
/// assert!(alloc.max_load() <= 5);
/// # Ok(())
/// # }
/// ```
pub fn greedy_d(
    balls: u64,
    bins: usize,
    choices: u32,
    rng: &mut SimRng,
) -> Result<SequentialAllocation, ConfigError> {
    if bins == 0 {
        return Err(ConfigError::ZeroBins);
    }
    if choices == 0 {
        return Err(ConfigError::OutOfDomain {
            name: "choices",
            domain: "d >= 1",
        });
    }
    let mut loads = vec![0u32; bins];
    for _ in 0..balls {
        let mut best = rng.uniform_bin(bins);
        for _ in 1..choices {
            let candidate = rng.uniform_bin(bins);
            if loads[candidate] < loads[best] {
                best = candidate;
            }
        }
        loads[best] += 1;
    }
    Ok(SequentialAllocation {
        loads,
        balls,
        choices,
    })
}

/// The classical one-choice allocation (`greedy_d` with `d = 1`).
///
/// # Errors
///
/// Returns a [`ConfigError`] if `n = 0`.
pub fn one_choice(
    balls: u64,
    bins: usize,
    rng: &mut SimRng,
) -> Result<SequentialAllocation, ConfigError> {
    greedy_d(balls, bins, 1, rng)
}

/// The Raab–Steger prediction for the one-choice maximum load with
/// `m = n` balls: `(1 − o(1))·ln n / ln ln n`. Returned as the leading
/// term, for shape checks against [`one_choice`].
pub fn raab_steger_max_load(n: usize) -> f64 {
    let ln_n = (n as f64).ln();
    ln_n / ln_n.ln()
}

/// The Azar et al. prediction for the sequential GREEDY\[d\] maximum load
/// with `m = n` balls and `d ≥ 2`: `ln ln n / ln d` (leading term).
///
/// # Panics
///
/// Panics if `d < 2` (the formula does not apply to the 1-choice case).
pub fn azar_max_load(n: usize, d: u32) -> f64 {
    assert!(d >= 2, "the Azar bound applies to d >= 2");
    (n as f64).ln().ln() / (d as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut rng = SimRng::seed_from(0);
        assert!(greedy_d(10, 0, 1, &mut rng).is_err());
        assert!(greedy_d(10, 10, 0, &mut rng).is_err());
    }

    #[test]
    fn conservation() {
        let mut rng = SimRng::seed_from(1);
        let alloc = greedy_d(5_000, 64, 2, &mut rng).unwrap();
        let total: u64 = alloc.loads().iter().map(|&l| l as u64).sum();
        assert_eq!(total, 5_000);
        assert_eq!(alloc.balls(), 5_000);
        assert_eq!(alloc.choices(), 2);
    }

    #[test]
    fn zero_balls() {
        let mut rng = SimRng::seed_from(2);
        let alloc = one_choice(0, 16, &mut rng).unwrap();
        assert_eq!(alloc.max_load(), 0);
        assert_eq!(alloc.empty_bins(), 16);
    }

    #[test]
    fn two_choices_beat_one_choice() {
        let n = 1 << 12;
        let mut rng = SimRng::seed_from(3);
        let one = one_choice(n as u64, n, &mut rng).unwrap();
        let two = greedy_d(n as u64, n, 2, &mut rng).unwrap();
        assert!(
            two.max_load() < one.max_load(),
            "d=2 max {} should undercut d=1 max {}",
            two.max_load(),
            one.max_load()
        );
    }

    #[test]
    fn one_choice_matches_raab_steger_shape() {
        // m = n = 2^14: prediction ln n / ln ln n ≈ 4.3; actual max load is
        // (1 ± o(1)) times that. Accept a generous band.
        let n = 1 << 14;
        let mut rng = SimRng::seed_from(4);
        let alloc = one_choice(n as u64, n, &mut rng).unwrap();
        let predicted = raab_steger_max_load(n);
        let actual = alloc.max_load() as f64;
        assert!(
            actual > 0.7 * predicted && actual < 3.0 * predicted,
            "actual {actual} vs predicted {predicted}"
        );
    }

    #[test]
    fn greedy_two_matches_azar_shape() {
        let n = 1 << 14;
        let mut rng = SimRng::seed_from(5);
        let alloc = greedy_d(n as u64, n, 2, &mut rng).unwrap();
        let predicted = azar_max_load(n, 2); // ≈ 3.2
        let actual = alloc.max_load() as f64;
        assert!(
            actual <= predicted + 3.0,
            "actual {actual} vs predicted {predicted} + O(1)"
        );
        assert!(actual >= 2.0, "max load implausibly small: {actual}");
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn azar_bound_rejects_d1() {
        azar_max_load(100, 1);
    }

    #[test]
    fn empty_bins_fraction_matches_poisson() {
        // m = n: fraction of empty bins → 1/e.
        let n = 1 << 14;
        let mut rng = SimRng::seed_from(6);
        let alloc = one_choice(n as u64, n, &mut rng).unwrap();
        let frac = alloc.empty_bins() as f64 / n as f64;
        assert!(
            (frac - (-1.0f64).exp()).abs() < 0.02,
            "empty fraction {frac}"
        );
    }

    #[test]
    fn histogram_is_consistent() {
        let mut rng = SimRng::seed_from(7);
        let alloc = greedy_d(100, 32, 2, &mut rng).unwrap();
        let h = alloc.load_histogram();
        assert_eq!(h.count(), 32);
        assert_eq!(h.max().unwrap() as u32, alloc.max_load());
    }
}
