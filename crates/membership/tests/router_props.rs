//! Property tests of the placement routers: the bounded-load cap is never
//! violated, assignments are deterministic under arbitrary membership
//! histories, and consistent-hashing-with-bounded-loads never moves more
//! keys than the round-robin resharder over random churn sequences.

use proptest::prelude::*;

use iba_membership::{moved_keys, BoundedLoadRouter, RoundRobinRouter, Router};

/// A churn step: grow or shrink the bin set.
#[derive(Debug, Clone, Copy)]
enum Churn {
    Add(usize),
    Remove(usize),
}

fn churn_seq() -> impl Strategy<Value = Vec<Churn>> {
    prop::collection::vec(
        prop_oneof![
            (1usize..8).prop_map(Churn::Add),
            (1usize..8).prop_map(Churn::Remove),
        ],
        1..10,
    )
}

/// Applies one churn step to both routers, clamping removals so at least
/// one bin always survives. Returns whether the step changed membership.
fn apply(step: Churn, routers: &mut [&mut dyn Router]) -> bool {
    match step {
        Churn::Add(count) => {
            for router in routers.iter_mut() {
                router.add_bins(count);
            }
            true
        }
        Churn::Remove(count) => {
            let bins = routers[0].bins();
            let count = count.min(bins - 1);
            if count == 0 {
                return false;
            }
            for router in routers.iter_mut() {
                router.remove_bins(count);
            }
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bounded_load_cap_holds_under_any_churn(seq in churn_seq(), m in 256usize..2048) {
        let keys: Vec<u64> = (0..m as u64).collect();
        let mut router = BoundedLoadRouter::new(16, 32, 0.25);
        for step in seq {
            apply(step, &mut [&mut router]);
            let n = router.bins();
            let assignment = router.assign(&keys);
            let cap = ((1.25 * m as f64) / n as f64).ceil().max(1.0) as u32;
            let mut loads = vec![0u32; n];
            for &bin in &assignment {
                prop_assert!((bin as usize) < n, "assignment within live bins");
                loads[bin as usize] += 1;
            }
            prop_assert!(loads.iter().all(|&l| l <= cap), "cap {cap} violated: {loads:?}");
        }
    }

    #[test]
    fn assignments_are_deterministic_after_any_history(seq in churn_seq()) {
        let keys: Vec<u64> = (0..512u64).collect();
        let mut a = BoundedLoadRouter::new(12, 32, 0.25);
        let mut b = BoundedLoadRouter::new(12, 32, 0.25);
        for step in seq {
            apply(step, &mut [&mut a]);
            apply(step, &mut [&mut b]);
            prop_assert_eq!(a.assign(&keys), b.assign(&keys));
        }
    }

    #[test]
    fn bounded_load_never_moves_more_than_round_robin(seq in churn_seq()) {
        // The acceptance-criterion property in miniature: per membership
        // change, CH-with-bounded-loads relocates at most as many keys as
        // modulo resharding (strictly fewer in aggregate — the committed
        // benchmark pins that).
        let keys: Vec<u64> = (0..2048u64).collect();
        let mut rr = RoundRobinRouter::new(24);
        let mut bl = BoundedLoadRouter::new(24, 32, 0.25);
        let mut rr_total = 0usize;
        let mut bl_total = 0usize;
        let mut changes = 0usize;
        for step in seq {
            let rr_before = rr.assign(&keys);
            let bl_before = bl.assign(&keys);
            if !apply(step, &mut [&mut rr, &mut bl]) {
                continue;
            }
            changes += 1;
            rr_total += moved_keys(&rr_before, &rr.assign(&keys));
            bl_total += moved_keys(&bl_before, &bl.assign(&keys));
        }
        if changes > 0 {
            prop_assert!(
                bl_total <= rr_total,
                "bounded-load moved {bl_total} vs round-robin {rr_total} over {changes} changes"
            );
        }
    }
}
