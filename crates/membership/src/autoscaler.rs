//! Pool-bound-driven autoscaling policy.
//!
//! Theorem 1 of the source paper bounds the stationary pool of a healthy
//! CAPPED(c, λ) system; the telemetry layer already exports both the live
//! pool size and the bound as gauges. The [`Autoscaler`] closes the loop:
//! a pool persistently *above* a high-water fraction of the bound means
//! the fleet is under-capacitated (faults, surges, or organic load) and
//! bins should be added; a pool persistently *below* a low-water fraction
//! means capacity can be handed back.
//!
//! The policy is deliberately boring — hysteresis (distinct high/low
//! ratios), patience (consecutive rounds before acting), and cooldown
//! (quiet rounds after an action, letting the system re-stabilize before
//! the next decision) — and fully deterministic, so elastic runs replay
//! bit-exactly.

use crate::plan::MembershipEvent;

/// Tuning knobs for the [`Autoscaler`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Scale up when `pool > high_ratio · bound` (persistently).
    pub high_ratio: f64,
    /// Scale down when `pool < low_ratio · bound` (persistently).
    pub low_ratio: f64,
    /// Consecutive breaching rounds required before acting.
    pub patience: u32,
    /// Bins added or removed per action.
    pub step: usize,
    /// Never shrink below this many bins.
    pub min_bins: usize,
    /// Never grow past this many bins.
    pub max_bins: usize,
    /// Quiet rounds after an action before observations count again.
    pub cooldown: u64,
}

impl AutoscalerConfig {
    /// Defaults tuned for the serve demo: act after 5 consecutive rounds
    /// past the 1.5×/0.25× bound watermarks, ±1/8 of `max_bins` per step,
    /// 10-round cooldown.
    pub fn new(min_bins: usize, max_bins: usize) -> Self {
        assert!(min_bins >= 1, "min_bins must be at least 1");
        assert!(max_bins >= min_bins, "max_bins must be >= min_bins");
        AutoscalerConfig {
            high_ratio: 1.5,
            low_ratio: 0.25,
            patience: 5,
            step: (max_bins / 8).max(1),
            min_bins,
            max_bins,
            cooldown: 10,
        }
    }

    /// Sets the high/low watermark ratios.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= low < high` and both are finite.
    #[must_use]
    pub fn with_ratios(mut self, low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && 0.0 <= low && low < high,
            "need 0 <= low < high"
        );
        self.low_ratio = low;
        self.high_ratio = high;
        self
    }

    /// Sets the patience (consecutive breaching rounds before acting).
    #[must_use]
    pub fn with_patience(mut self, patience: u32) -> Self {
        assert!(patience >= 1, "patience must be at least 1 round");
        self.patience = patience;
        self
    }

    /// Sets the per-action step size in bins.
    #[must_use]
    pub fn with_step(mut self, step: usize) -> Self {
        assert!(step >= 1, "step must be at least 1 bin");
        self.step = step;
        self
    }

    /// Sets the post-action cooldown in rounds.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: u64) -> Self {
        self.cooldown = cooldown;
        self
    }
}

/// What the autoscaler decided on an observation (reported for logs and
/// dashboards; the accompanying event, if any, is returned separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Pool within the watermarks (or patience still accumulating).
    Hold,
    /// Cooling down after a recent action.
    Cooldown,
    /// Scale-up triggered.
    Up,
    /// Scale-down triggered.
    Down,
}

/// The deterministic scaling policy. Feed it one observation per round
/// via [`observe`](Self::observe); it occasionally returns a
/// [`MembershipEvent`] to schedule at the next round boundary.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    high_streak: u32,
    low_streak: u32,
    last_action: Option<u64>,
    actions: u64,
}

impl Autoscaler {
    /// Creates the policy.
    pub fn new(config: AutoscalerConfig) -> Self {
        Autoscaler {
            config,
            high_streak: 0,
            low_streak: 0,
            last_action: None,
            actions: 0,
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Lifetime number of scaling actions emitted.
    pub fn actions(&self) -> u64 {
        self.actions
    }

    /// Observes one round: the live bin count, the pool size, and the
    /// Theorem-1 stationary pool bound for the *current* capacity.
    /// Returns the membership event to apply at the next round boundary,
    /// if the policy fired, plus the decision taken.
    pub fn observe(
        &mut self,
        round: u64,
        live_bins: usize,
        pool: u64,
        bound: f64,
    ) -> (ScaleDecision, Option<MembershipEvent>) {
        if let Some(last) = self.last_action {
            if round < last.saturating_add(self.config.cooldown) {
                self.high_streak = 0;
                self.low_streak = 0;
                return (ScaleDecision::Cooldown, None);
            }
        }
        let pool = pool as f64;
        if bound.is_finite() && pool > self.config.high_ratio * bound {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if bound.is_finite() && pool < self.config.low_ratio * bound {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }

        if self.high_streak >= self.config.patience {
            let headroom = self.config.max_bins.saturating_sub(live_bins);
            let step = self.config.step.min(headroom);
            self.high_streak = 0;
            if step > 0 {
                self.last_action = Some(round);
                self.actions += 1;
                return (
                    ScaleDecision::Up,
                    Some(MembershipEvent::AddBins { count: step }),
                );
            }
        } else if self.low_streak >= self.config.patience {
            let slack = live_bins.saturating_sub(self.config.min_bins);
            let step = self.config.step.min(slack);
            self.low_streak = 0;
            if step > 0 {
                self.last_action = Some(round);
                self.actions += 1;
                return (
                    ScaleDecision::Down,
                    Some(MembershipEvent::RemoveBins { count: step }),
                );
            }
        }
        (ScaleDecision::Hold, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> Autoscaler {
        Autoscaler::new(
            AutoscalerConfig::new(8, 64)
                .with_ratios(0.25, 1.5)
                .with_patience(3)
                .with_step(8)
                .with_cooldown(5),
        )
    }

    #[test]
    fn scales_up_after_patience_and_respects_cooldown() {
        let mut scaler = policy();
        let bound = 100.0;
        // Two breaching rounds: patience not met.
        assert_eq!(scaler.observe(1, 16, 200, bound).1, None);
        assert_eq!(scaler.observe(2, 16, 200, bound).1, None);
        // Third consecutive breach fires.
        let (decision, event) = scaler.observe(3, 16, 200, bound);
        assert_eq!(decision, ScaleDecision::Up);
        assert_eq!(event, Some(MembershipEvent::AddBins { count: 8 }));
        // Cooldown swallows further breaches.
        for round in 4..8 {
            let (decision, event) = scaler.observe(round, 24, 500, bound);
            assert_eq!(decision, ScaleDecision::Cooldown, "round {round}");
            assert_eq!(event, None);
        }
        // After cooldown the streak restarts from zero.
        assert_eq!(scaler.observe(8, 24, 500, bound).1, None);
        assert_eq!(scaler.observe(9, 24, 500, bound).1, None);
        let (_, event) = scaler.observe(10, 24, 500, bound);
        assert_eq!(event, Some(MembershipEvent::AddBins { count: 8 }));
        assert_eq!(scaler.actions(), 2);
    }

    #[test]
    fn scales_down_on_sustained_slack_and_clamps_at_min() {
        let mut scaler = policy();
        let bound = 100.0;
        for round in 1..=2 {
            assert_eq!(scaler.observe(round, 16, 5, bound).1, None);
        }
        let (decision, event) = scaler.observe(3, 16, 5, bound);
        assert_eq!(decision, ScaleDecision::Down);
        assert_eq!(event, Some(MembershipEvent::RemoveBins { count: 8 }));
        // At min_bins there is nothing to hand back: no event, no action.
        let mut floored = policy();
        for round in 1..=10 {
            let (_, event) = floored.observe(round, 8, 0, bound);
            assert_eq!(event, None, "round {round}");
        }
        assert_eq!(floored.actions(), 0);
    }

    #[test]
    fn in_band_pool_holds_and_resets_streaks() {
        let mut scaler = policy();
        let bound = 100.0;
        scaler.observe(1, 16, 200, bound);
        scaler.observe(2, 16, 200, bound);
        // Dip back in band: streak resets, no fire on the next breach.
        assert_eq!(scaler.observe(3, 16, 100, bound).0, ScaleDecision::Hold);
        assert_eq!(scaler.observe(4, 16, 200, bound).1, None);
        assert_eq!(scaler.observe(5, 16, 200, bound).1, None);
        assert!(scaler.observe(6, 16, 200, bound).1.is_some());
    }

    #[test]
    fn up_clamps_at_max_bins() {
        let mut scaler = policy();
        let bound = 100.0;
        for round in 1..=6 {
            let (_, event) = scaler.observe(round, 64, 500, bound);
            assert_eq!(event, None, "already at max_bins (round {round})");
        }
    }
}
