//! Elastic membership for the CAPPED(c, λ) serve stack.
//!
//! The paper's process fixes `n` at construction; a production fleet does
//! not. This crate holds the three membership-change building blocks the
//! `iba-serve` dispatch service composes into runtime grow/shrink:
//!
//! - **Replayable plans** ([`plan`]) — [`MembershipEvent`]s (add/remove
//!   bins, split/merge shards) keyed to round boundaries in a
//!   [`MembershipPlan`], serialized with the same versioned CRC32 codec
//!   (`IBMB`) the fault plans use, so a churn run replays bit-exactly.
//! - **Placement routers** ([`router`]) — two front-end placement
//!   strategies behind the [`Router`] trait: the classic round-robin
//!   resharder ([`RoundRobinRouter`], modulo over the live bin set — every
//!   membership change reshuffles almost every key) and consistent hashing
//!   with bounded loads ([`BoundedLoadRouter`], virtual nodes on a hash
//!   ring with a per-bin load cap of ⌈(1+ε)·avg⌉ — membership changes
//!   move `O(keys/n)` keys). The `membership_baseline` harness benchmarks
//!   them head-to-head on balls moved per membership change, following
//!   "Load Balancing with Dynamic Set of Balls and Bins"
//!   (Aamand–Knudsen–Thorup, arXiv:2104.05093).
//! - **Autoscaling policy** ([`autoscaler`]) — an [`Autoscaler`] consuming
//!   the pool-size-vs-Theorem-1-bound observations the telemetry layer
//!   already exports and emitting grow/shrink events with hysteresis,
//!   patience, and cooldown.
//!
//! The crate depends only on `iba-sim` (codec + RNG); the serve-side
//! mechanics (arena grow/shrink, shard splits, ball draining) live in
//! `iba-core` and `iba-serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autoscaler;
pub mod plan;
pub mod router;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleDecision};
pub use plan::{MembershipEvent, MembershipPlan};
pub use router::{moved_keys, BoundedLoadRouter, RoundRobinRouter, Router};
