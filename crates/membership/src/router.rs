//! Front-end placement strategies for a dynamic bin set.
//!
//! A [`Router`] maps a population of keys (balls, requests, partitions)
//! onto the live bins `0..n` and is re-consulted after every membership
//! change. The figure of merit is **keys moved per membership change**:
//! every key whose bin assignment changes is state the fleet must
//! physically relocate.
//!
//! Two strategies, benchmarked head-to-head by `membership_baseline`:
//!
//! - [`RoundRobinRouter`] — the classic resharder: key `k` lands in bin
//!   `k mod n`. Perfectly balanced, but a change of `n` reshuffles almost
//!   every key (`k mod n ≠ k mod n'` for most `k`).
//! - [`BoundedLoadRouter`] — consistent hashing with bounded loads
//!   (Aamand–Knudsen–Thorup, arXiv:2104.05093): each bin owns `V` virtual
//!   nodes on a `u64` hash ring; a key walks clockwise from its hash to
//!   the first bin whose load is below ⌈(1+ε)·keys/n⌉. Balance is within
//!   a (1+ε) factor and a membership change only re-homes the keys whose
//!   ring segment changed hands — `O(keys/n)` expected.
//!
//! Both routers are deterministic: same key population + same membership
//! history ⇒ same assignment, with no RNG anywhere.

/// SplitMix64 finalizer — the crate's only hash. Good avalanche, cheap,
/// and dependency-free.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Decorrelates key hashes from virtual-node hashes on the shared ring.
const KEY_SALT: u64 = 0x51C3_9A1B_7D4E_F002;

/// A placement strategy over a dynamic set of bins `0..n`.
///
/// Membership is LIFO, matching the serve layer: [`add_bins`]
/// (Router::add_bins) appends bin ids at the top, [`remove_bins`]
/// (Router::remove_bins) retires from the top. [`assign`](Router::assign)
/// maps every key to a live bin; diffing two assignments with
/// [`moved_keys`] counts the relocation cost of the change in between.
pub trait Router: std::fmt::Debug {
    /// Short strategy name for reports and benchmark tables.
    fn name(&self) -> &'static str;

    /// Number of live bins.
    fn bins(&self) -> usize;

    /// Adds `count` bins at the top of the index space.
    fn add_bins(&mut self, count: usize);

    /// Removes the top `count` bins (never below one).
    fn remove_bins(&mut self, count: usize);

    /// Assigns every key to a live bin, in key order. Deterministic:
    /// repeated calls under the same membership return the same vector.
    fn assign(&mut self, keys: &[u64]) -> Vec<u32>;
}

/// Number of keys whose assignment differs between two placements of the
/// same key population.
///
/// # Panics
///
/// Panics if the placements cover different key counts.
pub fn moved_keys(before: &[u32], after: &[u32]) -> usize {
    assert_eq!(before.len(), after.len(), "same key population");
    before.iter().zip(after).filter(|(a, b)| a != b).count()
}

/// The round-robin resharder: key `k` lands in bin `k mod n`.
#[derive(Debug, Clone)]
pub struct RoundRobinRouter {
    bins: usize,
}

impl RoundRobinRouter {
    /// Creates the resharder over `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        RoundRobinRouter { bins }
    }
}

impl Router for RoundRobinRouter {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn bins(&self) -> usize {
        self.bins
    }

    fn add_bins(&mut self, count: usize) {
        self.bins += count;
    }

    fn remove_bins(&mut self, count: usize) {
        assert!(count < self.bins, "must keep at least one bin");
        self.bins -= count;
    }

    fn assign(&mut self, keys: &[u64]) -> Vec<u32> {
        let n = self.bins as u64;
        keys.iter().map(|&k| (k % n) as u32).collect()
    }
}

/// Consistent hashing with bounded loads: virtual nodes on a `u64` ring,
/// per-bin load cap ⌈(1+ε)·keys/n⌉.
#[derive(Debug, Clone)]
pub struct BoundedLoadRouter {
    bins: usize,
    vnodes_per_bin: usize,
    epsilon: f64,
    /// `(vnode hash, bin)` sorted by hash (ties broken by bin id) — the
    /// ring. `bins · vnodes_per_bin` entries.
    ring: Vec<(u64, u32)>,
    /// Per-bin load scratch, reused across `assign` calls.
    loads: Vec<u32>,
}

impl BoundedLoadRouter {
    /// Creates the router with `vnodes_per_bin` virtual nodes per bin and
    /// balance slack `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `vnodes_per_bin == 0`, or `epsilon` is
    /// negative or non-finite.
    pub fn new(bins: usize, vnodes_per_bin: usize, epsilon: f64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(vnodes_per_bin > 0, "need at least one virtual node");
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative"
        );
        let mut router = BoundedLoadRouter {
            bins: 0,
            vnodes_per_bin,
            epsilon,
            ring: Vec::with_capacity(bins * vnodes_per_bin),
            loads: Vec::new(),
        };
        router.add_bins(bins);
        router
    }

    /// The configured balance slack ε (load cap is ⌈(1+ε)·avg⌉).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured virtual nodes per bin.
    pub fn vnodes_per_bin(&self) -> usize {
        self.vnodes_per_bin
    }

    fn vnode_hash(bin: usize, vnode: usize) -> u64 {
        mix64((bin as u64) << 24 | vnode as u64)
    }
}

impl Router for BoundedLoadRouter {
    fn name(&self) -> &'static str {
        "bounded_load"
    }

    fn bins(&self) -> usize {
        self.bins
    }

    fn add_bins(&mut self, count: usize) {
        for bin in self.bins..self.bins + count {
            for v in 0..self.vnodes_per_bin {
                self.ring.push((Self::vnode_hash(bin, v), bin as u32));
            }
        }
        self.bins += count;
        self.ring.sort_unstable();
    }

    fn remove_bins(&mut self, count: usize) {
        assert!(count < self.bins, "must keep at least one bin");
        self.bins -= count;
        let keep = self.bins as u32;
        self.ring.retain(|&(_, bin)| bin < keep);
    }

    fn assign(&mut self, keys: &[u64]) -> Vec<u32> {
        let n = self.bins;
        let cap = (((1.0 + self.epsilon) * keys.len() as f64) / n as f64)
            .ceil()
            .max(1.0) as u32;
        self.loads.clear();
        self.loads.resize(n, 0);
        let ring = &self.ring;
        keys.iter()
            .map(|&key| {
                let h = mix64(key ^ KEY_SALT);
                let mut i = ring.partition_point(|&(vh, _)| vh < h);
                // cap·n ≥ ⌈(1+ε)·keys⌉ ≥ keys, so a bin below its cap
                // always exists and the clockwise walk terminates.
                loop {
                    if i == ring.len() {
                        i = 0;
                    }
                    let bin = ring[i].1;
                    if self.loads[bin as usize] < cap {
                        self.loads[bin as usize] += 1;
                        return bin;
                    }
                    i += 1;
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(m: usize) -> Vec<u64> {
        (0..m as u64).collect()
    }

    #[test]
    fn round_robin_balances_sequential_keys_perfectly() {
        let mut router = RoundRobinRouter::new(10);
        let assignment = router.assign(&keys(1000));
        let mut loads = [0u32; 10];
        for &bin in &assignment {
            loads[bin as usize] += 1;
        }
        assert!(loads.iter().all(|&l| l == 100));
    }

    #[test]
    fn bounded_load_respects_the_cap_and_is_deterministic() {
        let mut router = BoundedLoadRouter::new(16, 64, 0.25);
        let population = keys(4096);
        let a = router.assign(&population);
        let b = router.assign(&population);
        assert_eq!(a, b, "assignment is deterministic");
        let cap = (1.25_f64 * 4096.0 / 16.0).ceil() as u32;
        let mut loads = vec![0u32; 16];
        for &bin in &a {
            assert!((bin as usize) < 16);
            loads[bin as usize] += 1;
        }
        assert!(
            loads.iter().all(|&l| l <= cap),
            "cap {cap} violated: {loads:?}"
        );
        assert!(loads.iter().all(|&l| l > 0), "every bin takes load");
    }

    #[test]
    fn bounded_load_moves_far_fewer_keys_than_round_robin() {
        let population = keys(8192);
        let mut rr = RoundRobinRouter::new(32);
        let mut bl = BoundedLoadRouter::new(32, 64, 0.25);
        let rr_before = rr.assign(&population);
        let bl_before = bl.assign(&population);

        rr.add_bins(2);
        bl.add_bins(2);
        let rr_moved = moved_keys(&rr_before, &rr.assign(&population));
        let bl_moved = moved_keys(&bl_before, &bl.assign(&population));
        assert!(
            bl_moved < rr_moved,
            "grow: bounded-load moved {bl_moved}, round-robin {rr_moved}"
        );

        let rr_before = rr.assign(&population);
        let bl_before = bl.assign(&population);
        rr.remove_bins(5);
        bl.remove_bins(5);
        let rr_moved = moved_keys(&rr_before, &rr.assign(&population));
        let bl_moved = moved_keys(&bl_before, &bl.assign(&population));
        assert!(
            bl_moved < rr_moved,
            "shrink: bounded-load moved {bl_moved}, round-robin {rr_moved}"
        );
    }

    #[test]
    fn removing_bins_only_rehomes_their_keys_mostly() {
        // The signature consistent-hashing property: removing one of 64
        // bins moves roughly keys/64, far below a full reshuffle.
        let population = keys(16384);
        let mut bl = BoundedLoadRouter::new(64, 64, 0.5);
        let before = bl.assign(&population);
        bl.remove_bins(1);
        let moved = moved_keys(&before, &bl.assign(&population));
        assert!(
            moved < population.len() / 8,
            "removing 1/64 bins moved {moved} of {} keys",
            population.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn removing_every_bin_panics() {
        let mut router = RoundRobinRouter::new(4);
        router.remove_bins(4);
    }
}
