//! Round-keyed, replayable membership change schedules.
//!
//! A [`MembershipPlan`] mirrors [`iba_sim::faults::FaultPlan`]: events are
//! keyed to 1-based rounds and applied immediately *before* the step that
//! produces that round, so a change scheduled at round `r` is in force for
//! all of round `r`. The `IBMB` codec (versioned, CRC32-checksummed, same
//! [`iba_sim::codec`] substrate as checkpoints and fault plans) makes
//! churn runs serializable and bit-exactly replayable.

use std::collections::BTreeMap;

use iba_sim::codec::{CodecError, Decoder, Encoder};

/// One membership change, applied at a round boundary.
///
/// Bin indices are dense `0..n`: growth appends at the top of the index
/// space and shrink removes from the top (LIFO membership — the natural
/// shape for autoscaling, and it keeps surviving bin indices stable so
/// in-flight state never relabels). Shard events reshape the worker
/// topology without changing `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipEvent {
    /// Adds `count` empty bins at the top of the index space. New bins
    /// enter online and primed with their full capacity as acceptance
    /// quota.
    AddBins {
        /// Number of bins to add (events with `count == 0` are ignored).
        count: usize,
    },
    /// Removes the top `count` bins. Their FIFO rings drain back through
    /// the serve path: the balls re-enter the pool with their original
    /// labels (oldest-first order preserved) and retry from the next
    /// round. The system never shrinks below one bin per shard.
    RemoveBins {
        /// Number of bins to remove (clamped by the applier).
        count: usize,
    },
    /// Splits shard `shard`'s contiguous bin range at its midpoint,
    /// spawning a new worker for the upper half. Only ownership moves —
    /// no ball leaves its ring.
    SplitShard {
        /// Index of the shard to split (ignored if out of range or the
        /// shard owns a single bin).
        shard: usize,
    },
    /// Merges shard `left + 1` into shard `left`, retiring the right
    /// worker; the absorbing shard owns the concatenated range. Buffered
    /// balls transfer between workers (counted as moved).
    MergeShards {
        /// Index of the left (absorbing) shard (ignored if `left + 1` is
        /// out of range).
        left: usize,
    },
}

const EVENT_ADD: u32 = 0;
const EVENT_REMOVE: u32 = 1;
const EVENT_SPLIT: u32 = 2;
const EVENT_MERGE: u32 = 3;

impl MembershipEvent {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            MembershipEvent::AddBins { count } => {
                enc.u32(EVENT_ADD);
                enc.usize(*count);
            }
            MembershipEvent::RemoveBins { count } => {
                enc.u32(EVENT_REMOVE);
                enc.usize(*count);
            }
            MembershipEvent::SplitShard { shard } => {
                enc.u32(EVENT_SPLIT);
                enc.usize(*shard);
            }
            MembershipEvent::MergeShards { left } => {
                enc.u32(EVENT_MERGE);
                enc.usize(*left);
            }
        }
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let kind = dec.u32("membership event kind")?;
        match kind {
            EVENT_ADD => Ok(MembershipEvent::AddBins {
                count: dec.usize("add count")?,
            }),
            EVENT_REMOVE => Ok(MembershipEvent::RemoveBins {
                count: dec.usize("remove count")?,
            }),
            EVENT_SPLIT => Ok(MembershipEvent::SplitShard {
                shard: dec.usize("split shard")?,
            }),
            EVENT_MERGE => Ok(MembershipEvent::MergeShards {
                left: dec.usize("merge left shard")?,
            }),
            _ => Err(CodecError::Invalid {
                what: "membership event kind",
            }),
        }
    }
}

/// Checkpoint tag for serialized membership plans ("IBa MemBership").
const PLAN_TAG: &str = "IBMB";
/// Current membership-plan format version.
const PLAN_VERSION: u32 = 1;

/// A round-keyed schedule of membership events.
///
/// Rounds are 1-based: an event scheduled at round `r` is applied
/// immediately before the step that produces round `r`. Events within one
/// round apply in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    events: BTreeMap<u64, Vec<MembershipEvent>>,
}

impl MembershipPlan {
    /// Creates an empty plan (a service with an empty plan is elastic in
    /// name only: its trajectory is identical to the fixed-`n` service).
    pub fn new() -> Self {
        MembershipPlan::default()
    }

    /// Schedules `event` at `round` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` — round 0 is the initial state, no step
    /// produces it.
    pub fn insert(&mut self, round: u64, event: MembershipEvent) {
        assert!(round > 0, "membership events schedule at rounds >= 1");
        self.events.entry(round).or_default().push(event);
    }

    /// Builder-style [`insert`](Self::insert).
    #[must_use]
    pub fn with(mut self, round: u64, event: MembershipEvent) -> Self {
        self.insert(round, event);
        self
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Earliest round with an event, if any.
    pub fn first_round(&self) -> Option<u64> {
        self.events.keys().next().copied()
    }

    /// Latest round with an event, if any.
    pub fn last_round(&self) -> Option<u64> {
        self.events.keys().next_back().copied()
    }

    /// The events scheduled at `round` (empty for quiet rounds).
    pub fn events_at(&self, round: u64) -> &[MembershipEvent] {
        self.events.get(&round).map_or(&[], Vec::as_slice)
    }

    /// Iterates over `(round, events)` in round order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[MembershipEvent])> {
        self.events.iter().map(|(&r, evs)| (r, evs.as_slice()))
    }

    /// Returns the plan with every event moved `offset` rounds later
    /// (re-anchoring a plan authored relative to a burn-in or a resume
    /// point).
    #[must_use]
    pub fn shifted(self, offset: u64) -> Self {
        MembershipPlan {
            events: self
                .events
                .into_iter()
                .map(|(r, evs)| (r + offset, evs))
                .collect(),
        }
    }

    /// Serializes the plan (versioned, CRC32-checksummed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.header(PLAN_TAG, PLAN_VERSION);
        enc.usize(self.events.len());
        for (&round, events) in &self.events {
            enc.u64(round);
            enc.usize(events.len());
            for event in events {
                event.encode_into(&mut enc);
            }
        }
        enc.finish()
    }

    /// Deserializes a plan written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on corrupted, truncated, malformed, or
    /// future-versioned input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes)?;
        dec.header(PLAN_TAG, PLAN_VERSION)?;
        let round_count = dec.usize("plan round count")?;
        let mut events = BTreeMap::new();
        for _ in 0..round_count {
            let round = dec.u64("plan round")?;
            if round == 0 {
                return Err(CodecError::Invalid { what: "plan round" });
            }
            let count = dec.usize("plan event count")?;
            let mut list = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                list.push(MembershipEvent::decode_from(&mut dec)?);
            }
            if events.insert(round, list).is_some() {
                return Err(CodecError::Invalid {
                    what: "duplicate plan round",
                });
            }
        }
        if !dec.is_exhausted() {
            return Err(CodecError::Invalid {
                what: "trailing bytes",
            });
        }
        Ok(MembershipPlan { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> MembershipPlan {
        MembershipPlan::new()
            .with(3, MembershipEvent::AddBins { count: 8 })
            .with(3, MembershipEvent::SplitShard { shard: 1 })
            .with(10, MembershipEvent::RemoveBins { count: 4 })
            .with(12, MembershipEvent::MergeShards { left: 0 })
    }

    #[test]
    fn plan_accessors_report_schedule() {
        let plan = sample_plan();
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.first_round(), Some(3));
        assert_eq!(plan.last_round(), Some(12));
        assert_eq!(plan.events_at(3).len(), 2);
        assert!(plan.events_at(7).is_empty());
        let shifted = plan.shifted(5);
        assert_eq!(shifted.first_round(), Some(8));
        assert_eq!(shifted.len(), 4);
    }

    #[test]
    fn codec_round_trips() {
        let plan = sample_plan();
        let bytes = plan.to_bytes();
        assert_eq!(MembershipPlan::from_bytes(&bytes).unwrap(), plan);
        let empty = MembershipPlan::new();
        assert_eq!(
            MembershipPlan::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn codec_rejects_corruption_and_truncation() {
        let bytes = sample_plan().to_bytes();
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(MembershipPlan::from_bytes(&corrupt).is_err());
        assert!(MembershipPlan::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(MembershipPlan::from_bytes(b"IBMB").is_err());
    }

    #[test]
    #[should_panic(expected = "rounds >= 1")]
    fn round_zero_is_rejected() {
        MembershipPlan::new().insert(0, MembershipEvent::AddBins { count: 1 });
    }
}
