//! Property-based tests of the theory companion: structural facts every
//! bound/fit must satisfy across the whole parameter domain.

use proptest::prelude::*;

use iba_analysis::{bounds, fits, math, meanfield, sweetspot, tail};

fn lambda_strategy() -> impl Strategy<Value = f64> {
    // λ ∈ [0, 1 − 2⁻²⁰], log-uniform near 1 to exercise heavy traffic.
    prop_oneof![
        0.0f64..0.99,
        (1u32..20).prop_map(|i| 1.0 - 2.0f64.powi(-(i as i32))),
    ]
}

proptest! {
    #[test]
    fn bounds_are_positive_and_monotone_in_lambda(
        n in 4usize..(1 << 20),
        c in 1u32..10,
        lambda in lambda_strategy(),
    ) {
        let pool = bounds::theorem2_pool_bound(n, c, lambda);
        let wait = bounds::theorem2_waiting_bound(n, c, lambda);
        prop_assert!(pool > 0.0 && pool.is_finite());
        prop_assert!(wait > 0.0 && wait.is_finite());
        // Increasing λ strictly increases both bounds.
        if lambda < 0.99 {
            let heavier = lambda + 0.005;
            prop_assert!(bounds::theorem2_pool_bound(n, c, heavier) > pool);
            prop_assert!(bounds::theorem2_waiting_bound(n, c, heavier) > wait);
        }
    }

    #[test]
    fn fits_stay_below_bounds(
        n in 4usize..(1 << 20),
        c in 1u32..10,
        lambda in lambda_strategy(),
    ) {
        prop_assert!(fits::pool_size_fit(n, c, lambda) <= bounds::theorem2_pool_bound(n, c, lambda));
        prop_assert!(
            fits::waiting_time_fit(n, c, lambda) <= bounds::theorem2_waiting_bound(n, c, lambda)
        );
    }

    #[test]
    fn sweet_spot_is_near_continuous_optimum(lambda in lambda_strategy()) {
        let c_star = sweetspot::continuous_sweet_spot(lambda);
        let c_int = sweetspot::optimal_capacity(lambda, 1 << 15);
        // The integer optimum differs from √L by at most ~1.6 because the
        // fit f(c) = L/c + c is flat near its minimum.
        prop_assert!(f64::from(c_int) >= (c_star - 1.7).max(1.0));
        prop_assert!(f64::from(c_int) <= c_star + 1.7);
    }

    #[test]
    fn mean_field_pool_below_envelope(
        c in 1u32..6,
        lambda in 0.01f64..0.999,
    ) {
        let sol = meanfield::solve(c, lambda);
        prop_assert!(sol.converged);
        prop_assert!(sol.pool_per_bin >= 0.0);
        prop_assert!(sol.pool_per_bin < fits::normalized_pool_fit(c, lambda));
        // Throughput equals λ at the fixed point.
        prop_assert!((sol.throughput - lambda).abs() < 1e-5);
    }

    #[test]
    fn chernoff_bounds_dominate_exact_binomial(
        n in 10u64..2000,
        p in 0.001f64..0.2,
        slack in 1.0f64..4.0,
    ) {
        let mean = n as f64 * p;
        let r = (2.0 * std::f64::consts::E * mean * slack).ceil();
        if r <= n as f64 {
            let bound = tail::chernoff_2r(r, mean).expect("precondition satisfied");
            let exact = tail::binomial_tail_at_least(n, p, r as u64);
            prop_assert!(exact <= bound + 1e-12, "exact {exact} > bound {bound}");
        }
    }

    #[test]
    fn binomial_tail_is_a_probability(
        n in 0u64..500,
        p in 0.0f64..=1.0,
        k in 0u64..600,
    ) {
        let t = tail::binomial_tail_at_least(n, p, k);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn miss_probability_matches_expected_empty_bins(
        n in 1usize..10_000,
        m in 0u64..100_000,
    ) {
        let p = math::miss_probability(n, m);
        prop_assert!((0.0..=1.0).contains(&p));
        let e = math::expected_empty_bins(n, m);
        prop_assert!((e - n as f64 * p).abs() < 1e-9 * n as f64);
    }

    #[test]
    fn ln_inv_gap_inverse_relationship(lambda in 0.0f64..0.9999) {
        // e^{-ln_inv_gap(λ)} == 1 − λ.
        let l = math::ln_inv_gap(lambda);
        prop_assert!(((-l).exp() - (1.0 - lambda)).abs() < 1e-12);
    }
}
