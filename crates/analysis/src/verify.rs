//! Measured-vs-theory comparison records.
//!
//! The figure harness and the integration tests both need to answer "does
//! the measurement respect the theory?" in a uniform way. A
//! [`TheoryCheck`] packages one measured quantity together with the
//! theorem bound and the Section-V fit it should be compared against, and
//! renders the comparison for EXPERIMENTS.md.

use std::fmt;

use crate::bounds;
use crate::fits;

/// One measured quantity compared against its theorem bound and its
/// Section-V empirical fit.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoryCheck {
    /// What was measured (e.g. `"pool size"`).
    pub quantity: &'static str,
    /// The measured value.
    pub measured: f64,
    /// The w.h.p. theorem bound (Theorem 1 or 2).
    pub bound: f64,
    /// The Section-V empirical fit.
    pub fit: f64,
}

impl TheoryCheck {
    /// Whether the measurement respects the theorem bound.
    pub fn within_bound(&self) -> bool {
        self.measured <= self.bound
    }

    /// Ratio of measured value to the empirical fit (≈ 1 when the fit
    /// describes the system; the paper reports agreement within small
    /// constants).
    pub fn fit_ratio(&self) -> f64 {
        if self.fit == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.fit
        }
    }

    /// Whether the measurement agrees with the fit within a multiplicative
    /// `slack` (e.g. `slack = 1.5` accepts up to 50 % above the fit; values
    /// below the fit always pass, since the fit is an upper envelope).
    pub fn matches_fit(&self, slack: f64) -> bool {
        self.fit_ratio() <= slack
    }
}

impl fmt::Display for TheoryCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: measured {:.3} | fit {:.3} (ratio {:.2}) | bound {:.3} ({})",
            self.quantity,
            self.measured,
            self.fit,
            self.fit_ratio(),
            self.bound,
            if self.within_bound() {
                "OK"
            } else {
                "VIOLATED"
            }
        )
    }
}

/// Builds the pool-size check for a CAPPED(c, λ) measurement.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)` or `c = 0`.
pub fn pool_check(n: usize, c: u32, lambda: f64, measured: f64) -> TheoryCheck {
    TheoryCheck {
        quantity: "pool size",
        measured,
        bound: bounds::theorem2_pool_bound(n, c, lambda),
        fit: fits::pool_size_fit(n, c, lambda),
    }
}

/// Builds the waiting-time check for a CAPPED(c, λ) measurement.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)` or `c = 0`.
pub fn waiting_check(n: usize, c: u32, lambda: f64, measured: f64) -> TheoryCheck {
    TheoryCheck {
        quantity: "waiting time",
        measured,
        bound: bounds::theorem2_waiting_bound(n, c, lambda),
        fit: fits::waiting_time_fit(n, c, lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_bound_and_ratio() {
        let check = TheoryCheck {
            quantity: "pool size",
            measured: 80.0,
            bound: 100.0,
            fit: 40.0,
        };
        assert!(check.within_bound());
        assert_eq!(check.fit_ratio(), 2.0);
        assert!(!check.matches_fit(1.5));
        assert!(check.matches_fit(2.0));
    }

    #[test]
    fn violated_bound_renders_loudly() {
        let check = TheoryCheck {
            quantity: "waiting time",
            measured: 200.0,
            bound: 100.0,
            fit: 50.0,
        };
        assert!(!check.within_bound());
        assert!(check.to_string().contains("VIOLATED"));
    }

    #[test]
    fn zero_fit_edge_cases() {
        let exact = TheoryCheck {
            quantity: "x",
            measured: 0.0,
            bound: 1.0,
            fit: 0.0,
        };
        assert_eq!(exact.fit_ratio(), 1.0);
        let off = TheoryCheck {
            quantity: "x",
            measured: 1.0,
            bound: 1.0,
            fit: 0.0,
        };
        assert_eq!(off.fit_ratio(), f64::INFINITY);
    }

    #[test]
    fn constructors_wire_the_right_formulas() {
        let n = 1 << 12;
        let c = 2;
        let lambda = 0.75;
        let p = pool_check(n, c, lambda, 1000.0);
        assert_eq!(p.bound, bounds::theorem2_pool_bound(n, c, lambda));
        assert_eq!(p.fit, fits::pool_size_fit(n, c, lambda));
        let w = waiting_check(n, c, lambda, 5.0);
        assert_eq!(w.bound, bounds::theorem2_waiting_bound(n, c, lambda));
        assert_eq!(w.fit, fits::waiting_time_fit(n, c, lambda));
        assert!(w.within_bound());
    }
}
