//! The Section-V empirical fit curves — the dashed lines of Figures 4
//! and 5.
//!
//! The paper's experiments indicate that dropping the analysis' unoptimized
//! constants describes the measured system accurately:
//!
//! - **pool size** ≈ `n/c·ln(1/(1−λ)) + n` (Figure 4's dashed line is the
//!   normalized version `ln(1/(1−λ))/c + 1`);
//! - **waiting time** ≈ `ln(1/(1−λ))/c + log log n + c` (Figure 5's dashed
//!   line).
//!
//! These are the reference curves EXPERIMENTS.md compares measured values
//! against.

use crate::math::{ln_inv_gap, log2_log2};

/// Normalized pool-size fit `ln(1/(1−λ))/c + 1` (Figure 4's dashed line).
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)` or `c = 0`.
pub fn normalized_pool_fit(c: u32, lambda: f64) -> f64 {
    assert!(c >= 1, "capacity must be at least 1");
    ln_inv_gap(lambda) / c as f64 + 1.0
}

/// Absolute pool-size fit `n·(ln(1/(1−λ))/c + 1)`.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)` or `c = 0`.
pub fn pool_size_fit(n: usize, c: u32, lambda: f64) -> f64 {
    n as f64 * normalized_pool_fit(c, lambda)
}

/// Waiting-time fit `ln(1/(1−λ))/c + log log n + c` (Figure 5's dashed
/// line).
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)` or `c = 0`.
pub fn waiting_time_fit(n: usize, c: u32, lambda: f64) -> f64 {
    assert!(c >= 1, "capacity must be at least 1");
    ln_inv_gap(lambda) / c as f64 + log2_log2(n) + c as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_pool_fit_values() {
        // λ = 0.75, c = 1: ln 4 + 1 ≈ 2.386.
        assert!((normalized_pool_fit(1, 0.75) - (4.0f64.ln() + 1.0)).abs() < 1e-12);
        // c = 2 halves the log term.
        assert!((normalized_pool_fit(2, 0.75) - (4.0f64.ln() / 2.0 + 1.0)).abs() < 1e-12);
        // λ = 0 floors at 1 (the +n additive term).
        assert_eq!(normalized_pool_fit(3, 0.0), 1.0);
    }

    #[test]
    fn pool_fit_scales_linearly_in_n() {
        let per_bin = normalized_pool_fit(2, 0.75);
        assert!((pool_size_fit(1000, 2, 0.75) - 1000.0 * per_bin).abs() < 1e-9);
    }

    #[test]
    fn waiting_fit_reproduces_figure5_sweet_spot() {
        // For λ = 1 − 2⁻¹⁰ (ln term ≈ 6.93) the fit ln/c + loglog n + c over
        // c ∈ [1..5] at n = 2^15 is minimized at c ≈ 2–3, matching the
        // paper's observed minimum.
        let lambda = 1.0 - 1.0 / 1024.0;
        let n = 1 << 15;
        let w: Vec<f64> = (1..=5).map(|c| waiting_time_fit(n, c, lambda)).collect();
        let min_idx = w
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let min_c = min_idx + 1;
        assert!((2..=3).contains(&min_c), "minimum at c = {min_c}: {w:?}");
    }

    #[test]
    fn waiting_fit_is_monotone_increasing_in_c_for_small_lambda() {
        // λ = 0.5: ln 2 ≈ 0.69 < 1, so the +c term dominates immediately and
        // c = 1 is optimal.
        let n = 1 << 15;
        let w: Vec<f64> = (1..=5).map(|c| waiting_time_fit(n, c, 0.5)).collect();
        for pair in w.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn fits_are_below_theorem_bounds() {
        use crate::bounds;
        let n = 1 << 15;
        for lambda in [0.5, 0.75, 1.0 - 1.0 / 1024.0] {
            for c in 1..=5 {
                assert!(pool_size_fit(n, c, lambda) < bounds::theorem2_pool_bound(n, c, lambda));
                assert!(
                    waiting_time_fit(n, c, lambda) < bounds::theorem2_waiting_bound(n, c, lambda)
                );
            }
        }
    }
}
