//! Exact Markov-chain analysis of CAPPED(1, λ) for small `n`.
//!
//! For unit capacity the system state reduces to the pool size alone
//! (every bin starts every round empty — Section III's key simplification),
//! and the pool is a Markov chain on ℕ:
//!
//! - from pool `m`, the round throws `ν = m + λn` balls;
//! - the number of *occupied* bins `K` after ν uniform throws determines
//!   the acceptances (each occupied bin accepts exactly one ball at
//!   `c = 1`), so the next pool is `m' = ν − K`.
//!
//! The occupancy distribution `P(K = k)` follows a textbook DP (each throw
//! hits an occupied bin w.p. `k/n`), so the full transition matrix is
//! computable exactly. Truncating the chain at a generous pool bound and
//! power-iterating yields the exact stationary pool distribution — which
//! the simulator must match. This gives a third, fully rigorous
//! validation layer next to the mean-field model and the executable
//! specification (exact for *finite* `n`, no `n → ∞` limit involved).

/// Distribution of the number of occupied (non-empty) bins after throwing
/// `balls` balls independently and uniformly at random into `bins` bins.
///
/// Returns `p` with `p[k] = P(K = k)`, `k ∈ [0, min(balls, bins)]`.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn occupancy_distribution(bins: usize, balls: usize) -> Vec<f64> {
    assert!(bins > 0, "need at least one bin");
    let kmax = balls.min(bins);
    let mut p = vec![0.0; kmax + 1];
    p[0] = 1.0;
    let n = bins as f64;
    for _ in 0..balls {
        let mut next = vec![0.0; kmax + 1];
        for (k, &prob) in p.iter().enumerate() {
            if prob == 0.0 {
                continue;
            }
            // The throw hits one of the k occupied bins w.p. k/n…
            next[k] += prob * (k as f64 / n);
            // …or a fresh bin otherwise.
            if k < kmax {
                next[k + 1] += prob * ((n - k as f64) / n);
            }
        }
        p = next;
    }
    p
}

/// Exact stationary pool-size distribution of CAPPED(1, λ) with `n` bins
/// and `batch = λn` arrivals per round, computed on the chain truncated at
/// pool size `truncate` (mass above the truncation is folded onto the
/// boundary state; choose `truncate` well above `n·ln(1/(1−λ))`).
///
/// Returns `π` with `π[m] = P(pool = m)` at stationarity.
///
/// # Panics
///
/// Panics if `bins == 0` or `batch > bins` (unstable) or
/// `truncate < batch`.
pub fn stationary_pool_distribution(bins: usize, batch: usize, truncate: usize) -> Vec<f64> {
    assert!(bins > 0, "need at least one bin");
    assert!(batch <= bins, "batch must not exceed n (lambda <= 1)");
    assert!(truncate >= batch, "truncation below the arrival batch");

    let states = truncate + 1;
    // Pre-compute transition rows: row[m][m'] — stored dense (small n).
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(states);
    for m in 0..states {
        let nu = m + batch;
        let occ = occupancy_distribution(bins, nu);
        let mut row = vec![0.0; states];
        for (k, &prob) in occ.iter().enumerate() {
            let next = nu - k;
            let idx = next.min(truncate);
            row[idx] += prob;
        }
        rows.push(row);
    }

    // Power iteration from the empty state (the paper's initial state).
    let mut pi = vec![0.0; states];
    pi[0] = 1.0;
    for _ in 0..100_000 {
        let mut next = vec![0.0; states];
        for (m, &mass) in pi.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (mp, &p) in rows[m].iter().enumerate() {
                if p > 0.0 {
                    next[mp] += mass * p;
                }
            }
        }
        let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        pi = next;
        if delta < 1e-13 {
            break;
        }
    }
    pi
}

/// Mean of a distribution given as a probability vector over 0, 1, 2, ….
pub fn distribution_mean(pi: &[f64]) -> f64 {
    pi.iter().enumerate().map(|(m, &p)| m as f64 * p).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_basics() {
        // 0 balls: everything empty.
        assert_eq!(occupancy_distribution(3, 0), vec![1.0]);
        // 1 ball: exactly one bin occupied.
        let p = occupancy_distribution(3, 1);
        assert!((p[1] - 1.0).abs() < 1e-15);
        // 2 balls into 2 bins: collision w.p. 1/2.
        let p = occupancy_distribution(2, 2);
        assert!((p[1] - 0.5).abs() < 1e-15);
        assert!((p[2] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn occupancy_sums_to_one_and_matches_mean() {
        for (n, b) in [(4usize, 6usize), (10, 10), (7, 20)] {
            let p = occupancy_distribution(n, b);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            // E[K] = n(1 − (1 − 1/n)^b).
            let mean: f64 = p.iter().enumerate().map(|(k, &q)| k as f64 * q).sum();
            let expected = n as f64 * (1.0 - (1.0 - 1.0 / n as f64).powi(b as i32));
            assert!((mean - expected).abs() < 1e-10, "n={n}, b={b}");
        }
    }

    #[test]
    fn stationary_distribution_is_proper() {
        let pi = stationary_pool_distribution(4, 2, 60);
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= -1e-15));
        // Negligible mass at the truncation boundary.
        assert!(pi[60] < 1e-9, "truncation too tight: {}", pi[60]);
    }

    #[test]
    fn zero_arrivals_stay_empty() {
        let pi = stationary_pool_distribution(4, 0, 10);
        assert!((pi[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_mean_grows_with_lambda() {
        let light = distribution_mean(&stationary_pool_distribution(8, 2, 100));
        let heavy = distribution_mean(&stationary_pool_distribution(8, 6, 200));
        assert!(heavy > light);
    }

    #[test]
    fn small_n_mean_is_near_mean_field() {
        // n = 16, λ = 0.5: mean-field predicts (ln 2 − 0.5)·n ≈ 3.09.
        // The exact finite-n mean is slightly *below* it: a bin's miss
        // probability (1 − 1/n)^ν is smaller than the Poissonized
        // e^{−ν/n}, so finite systems accept a bit more per round. The
        // two must agree within ~15 % at this size.
        let n = 16;
        let pi = stationary_pool_distribution(n, 8, 400);
        let mean = distribution_mean(&pi);
        let mean_field = (2.0f64.ln() - 0.5) * n as f64;
        let rel = (mean - mean_field).abs() / mean_field;
        assert!(rel < 0.15, "exact {mean} vs mean-field {mean_field}");
        assert!(
            mean < mean_field,
            "finite-n acceptance advantage should put exact ({mean}) below mean-field ({mean_field})"
        );
    }
}
