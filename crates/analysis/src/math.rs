//! Numeric building blocks shared by the bound and fit formulas.

/// `ln(1/(1−λ))`, the load parameter appearing in every bound of the paper.
///
/// Computed as `−ln_1p(−λ)` for numerical stability near `λ = 0` and near
/// `λ = 1`.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)`.
///
/// # Examples
///
/// ```
/// use iba_analysis::math::ln_inv_gap;
/// assert_eq!(ln_inv_gap(0.0), 0.0);
/// assert!((ln_inv_gap(0.75) - 4.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_inv_gap(lambda: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&lambda),
        "lambda must be in [0, 1), got {lambda}"
    );
    -(-lambda).ln_1p()
}

/// `log₂ log₂ n`, the additive term in the waiting-time bounds (the paper
/// writes `log log n`; base 2 matches the related-work convention of
/// GREEDY\[2\]'s `log log n / log d` with `d = 2`).
///
/// Defined as 0 for `n ≤ 2` (where the iterated logarithm is non-positive
/// or undefined but the bound's additive term is absorbed by the `O(1)`).
pub fn log2_log2(n: usize) -> f64 {
    if n <= 2 {
        return 0.0;
    }
    let l = (n as f64).log2();
    if l <= 1.0 {
        0.0
    } else {
        l.log2()
    }
}

/// Natural-log version, `ln ln n` (used by the THRESHOLD\[1\] round bound).
/// Defined as 0 for `n ≤ 3`.
pub fn ln_ln(n: usize) -> f64 {
    if n <= 3 {
        return 0.0;
    }
    (n as f64).ln().ln().max(0.0)
}

/// The per-round probability that a given bin receives none of `m` balls
/// thrown independently and uniformly at random into `n` bins:
/// `(1 − 1/n)^m`.
///
/// # Panics
///
/// Panics if `n = 0`.
pub fn miss_probability(n: usize, m: u64) -> f64 {
    assert!(n > 0, "need at least one bin");
    if n == 1 {
        return if m == 0 { 1.0 } else { 0.0 };
    }
    ((m as f64) * (-1.0 / n as f64).ln_1p()).exp()
}

/// Expected number of empty bins after throwing `m` balls into `n` bins,
/// `n·(1 − 1/n)^m` (the mean used by Lemma 10).
pub fn expected_empty_bins(n: usize, m: u64) -> f64 {
    n as f64 * miss_probability(n, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_inv_gap_known_values() {
        assert_eq!(ln_inv_gap(0.0), 0.0);
        assert!((ln_inv_gap(0.5) - 2.0f64.ln()).abs() < 1e-12);
        assert!((ln_inv_gap(0.75) - 4.0f64.ln()).abs() < 1e-12);
        // λ = 1 − 2⁻¹⁰: ln 1024 = 10 ln 2.
        let lambda = 1.0 - 1.0 / 1024.0;
        assert!((ln_inv_gap(lambda) - 10.0 * 2.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_inv_gap_is_monotone() {
        let mut prev = -1.0;
        for i in 0..100 {
            let v = ln_inv_gap(i as f64 / 100.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "lambda must be in [0, 1)")]
    fn ln_inv_gap_rejects_one() {
        ln_inv_gap(1.0);
    }

    #[test]
    fn log2_log2_values() {
        assert_eq!(log2_log2(1), 0.0);
        assert_eq!(log2_log2(2), 0.0);
        assert!((log2_log2(4) - 1.0).abs() < 1e-12); // log2(log2 4) = log2 2
        assert!((log2_log2(1 << 15) - 15f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn ln_ln_values() {
        assert_eq!(ln_ln(2), 0.0);
        assert!((ln_ln(1 << 12) - (12.0 * 2.0f64.ln()).ln()).abs() < 1e-12);
    }

    #[test]
    fn miss_probability_basics() {
        assert_eq!(miss_probability(10, 0), 1.0);
        assert!((miss_probability(2, 1) - 0.5).abs() < 1e-12);
        // Large m drives the probability to ~e^{-m/n}.
        let p = miss_probability(1000, 1000);
        assert!((p - (-1.0f64).exp()).abs() < 1e-3, "{p}");
        // Single bin always receives every ball.
        assert_eq!(miss_probability(1, 5), 0.0);
        assert_eq!(miss_probability(1, 0), 1.0);
    }

    #[test]
    fn expected_empty_bins_scales() {
        let e = expected_empty_bins(1000, 1000);
        assert!((e - 1000.0 * (-1.0f64).exp()).abs() < 2.0, "{e}");
        assert_eq!(expected_empty_bins(10, 0), 10.0);
    }
}
