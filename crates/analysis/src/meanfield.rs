//! Mean-field (differential-equation) model of CAPPED(c, λ).
//!
//! Related work analyzed infinite parallel allocation processes with
//! differential-equation methods (Berenbrink, Czumaj, Friedetzky,
//! Vvedenskaya, SPAA 2000; Mitzenmacher, TPDS 2001). This module applies
//! the same technique to CAPPED(c, λ): in the `n → ∞` limit, the requests
//! a bin receives in a round are Poisson(`μ`) with `μ = m/n + λ`, bins
//! decouple, and the system state reduces to
//!
//! - the normalized pool size `x = m/n`, and
//! - the start-of-round load distribution `p_ℓ` over `ℓ ∈ [0, c−1]`
//!   (after the deletion stage no bin holds more than `c − 1` balls).
//!
//! One round maps `(x, p)` to `(x', p')` exactly (Poisson arithmetic, no
//! sampling); iterating to the fixed point yields the stationary regime.
//! The mean waiting time follows from **Little's law**: the mean number of
//! balls in the system (pool + buffers) divided by the arrival rate `λn`.
//!
//! The model is deliberately independent of the simulator — it shares no
//! code with `iba-core` — so agreement between the two (verified in the
//! integration tests) cross-validates both.
//!
//! For `c = 1` the fixed point is the closed form
//! `x* = ln(1/(1−λ)) − λ`: the Poisson acceptance `1 − e^{−(x+λ)}` must
//! equal the arrival rate `λ`.

/// Stationary solution of the mean-field model.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanFieldSolution {
    /// Normalized stationary pool size `x* = m/n`.
    pub pool_per_bin: f64,
    /// Start-of-round load distribution: `load_distribution[ℓ]` is the
    /// fraction of bins holding `ℓ` balls, `ℓ ∈ [0, c−1]`.
    pub load_distribution: Vec<f64>,
    /// Mean number of buffered balls per bin at the start of a round.
    pub buffered_per_bin: f64,
    /// Throughput per bin per round (must equal `λ` at stationarity).
    pub throughput: f64,
    /// Mean time from generation to deletion (rounds), via Little's law.
    /// `None` when `λ = 0` (no arrivals — waiting time undefined).
    pub mean_wait: Option<f64>,
    /// Number of fixed-point iterations used.
    pub iterations: u32,
    /// Whether the iteration converged to the requested tolerance.
    pub converged: bool,
}

/// Solves the mean-field model of CAPPED(c, λ) by fixed-point iteration.
///
/// # Panics
///
/// Panics if `c = 0` or `λ ∉ [0, 1)`.
///
/// # Examples
///
/// ```
/// use iba_analysis::meanfield::solve;
/// let sol = solve(1, 0.75);
/// // Closed form for c = 1: x* = ln(1/(1−λ)) − λ ≈ 0.636.
/// assert!((sol.pool_per_bin - (4.0f64.ln() - 0.75)).abs() < 1e-6);
/// ```
pub fn solve(c: u32, lambda: f64) -> MeanFieldSolution {
    solve_mixed(&[(c, 1.0)], lambda)
}

/// Solution of the heterogeneous-capacity mean-field model.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSolution {
    /// Normalized stationary pool size `x* = m/n`.
    pub pool_per_bin: f64,
    /// Per-class start-of-round load distributions, in class order.
    pub class_load_distributions: Vec<Vec<f64>>,
    /// Mean buffered balls per bin across classes.
    pub buffered_per_bin: f64,
    /// Throughput per bin per round.
    pub throughput: f64,
    /// Mean waiting time via Little's law (`None` for `λ = 0`).
    pub mean_wait: Option<f64>,
    /// Fixed-point iterations used.
    pub iterations: u32,
    /// Whether the iteration converged.
    pub converged: bool,
}

/// Solves the mean-field model for a **capacity mixture**: `classes[k]` is
/// `(capacity, fraction of bins)` — the heterogeneous-server extension.
/// Fractions must sum to 1.
///
/// # Panics
///
/// Panics if `classes` is empty, any capacity is 0, any fraction is
/// negative, the fractions do not sum to 1 (±10⁻⁹), or `λ ∉ [0, 1)`.
pub fn solve_mixed_classes(classes: &[(u32, f64)], lambda: f64) -> MixedSolution {
    assert!(!classes.is_empty(), "need at least one capacity class");
    assert!(
        classes.iter().all(|&(c, f)| c >= 1 && f >= 0.0),
        "capacities must be >= 1 and fractions non-negative"
    );
    let total: f64 = classes.iter().map(|&(_, f)| f).sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "class fractions must sum to 1, got {total}"
    );
    assert!(
        (0.0..1.0).contains(&lambda),
        "mean-field model requires lambda in [0, 1)"
    );
    const TOL: f64 = 1e-12;
    const MAX_ITER: u32 = 2_000_000;

    let mut x = 0.0f64;
    let mut dists: Vec<Vec<f64>> = classes
        .iter()
        .map(|&(c, _)| {
            let mut p = vec![0.0; c as usize];
            p[0] = 1.0;
            p
        })
        .collect();

    let mut iterations = 0;
    let mut converged = false;
    let mut throughput = 0.0;
    while iterations < MAX_ITER {
        iterations += 1;
        let mut accepted_total = 0.0;
        let mut served_total = 0.0;
        let mut delta = 0.0;
        let mut next_dists = Vec::with_capacity(dists.len());
        for (&(c, fraction), p) in classes.iter().zip(&dists) {
            let (_, p_next, accepted, served) = round_map(x, p, c as usize, lambda);
            accepted_total += fraction * accepted;
            served_total += fraction * served;
            delta += p
                .iter()
                .zip(&p_next)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
            next_dists.push(p_next);
        }
        let x_next = (x + lambda - accepted_total).max(0.0);
        delta += (x_next - x).abs();
        x = x_next;
        dists = next_dists;
        throughput = served_total;
        if delta < TOL {
            converged = true;
            break;
        }
    }

    let buffered_per_bin: f64 = classes
        .iter()
        .zip(&dists)
        .map(|(&(_, fraction), p)| {
            fraction
                * p.iter()
                    .enumerate()
                    .map(|(l, &q)| l as f64 * q)
                    .sum::<f64>()
        })
        .sum();
    let mean_wait = if lambda > 0.0 {
        Some((x + buffered_per_bin) / lambda)
    } else {
        None
    };

    MixedSolution {
        pool_per_bin: x,
        class_load_distributions: dists,
        buffered_per_bin,
        throughput,
        mean_wait,
        iterations,
        converged,
    }
}

/// Uniform-capacity front-end over [`solve_mixed_classes`], returning the
/// single-class [`MeanFieldSolution`].
fn solve_mixed(classes: &[(u32, f64)], lambda: f64) -> MeanFieldSolution {
    let mixed = solve_mixed_classes(classes, lambda);
    MeanFieldSolution {
        pool_per_bin: mixed.pool_per_bin,
        load_distribution: mixed.class_load_distributions.into_iter().next().unwrap(),
        buffered_per_bin: mixed.buffered_per_bin,
        throughput: mixed.throughput,
        mean_wait: mixed.mean_wait,
        iterations: mixed.iterations,
        converged: mixed.converged,
    }
}

/// One exact round of the mean-field dynamics. Returns
/// `(x', p', accepted per bin, served per bin)`.
fn round_map(x: f64, p: &[f64], c: usize, lambda: f64) -> (f64, Vec<f64>, f64, f64) {
    let mu = x + lambda; // Poisson request rate per bin
    let pmf = poisson_pmf(mu, c + 1); // pmf[k] for k in 0..=c
                                      // tail[k] = P(R >= k)
    let mut tail = vec![0.0; c + 2];
    tail[c + 1] = 0.0;
    // P(R >= k) = 1 - sum_{j<k} pmf[j]
    let mut cum = 0.0;
    for k in 0..=c {
        tail[k] = 1.0 - cum;
        cum += pmf[k];
    }
    tail[c + 1] = 1.0 - cum;

    let mut p_next = vec![0.0; c];
    let mut accepted = 0.0;
    let mut served = 0.0;
    for (load, &q) in p.iter().enumerate() {
        if q == 0.0 {
            continue;
        }
        let free = c - load;
        // Accepted balls a = min(free, R); load after acceptance is
        // load + a; then one deletion if load + a >= 1.
        // E[a] = sum_{k<free} k*pmf[k] + free*P(R >= free).
        let mut e_a = free as f64 * tail[free];
        for (k, &pk) in pmf.iter().enumerate().take(free) {
            e_a += k as f64 * pk;
        }
        accepted += q * e_a;

        if load == 0 {
            // a = 0 (prob pmf[0]): stays empty, no deletion.
            p_next[0] += q * pmf[0];
            // a = k in 1..free: load' = k - 1, one deletion.
            for k in 1..free {
                p_next[k - 1] += q * pmf[k];
            }
            // a = free (= c): load' = c - 1.
            p_next[free - 1] += q * tail[free];
            served += q * (1.0 - pmf[0]);
        } else {
            // load >= 1: always serves one.
            for k in 0..free {
                p_next[load + k - 1] += q * pmf[k];
            }
            p_next[load + free - 1] += q * tail[free];
            served += q;
        }
    }
    let x_next = (x + lambda - accepted).max(0.0);
    (x_next, p_next, accepted, served)
}

/// Poisson pmf values `P(R = k)` for `k ∈ [0, len)`, computed iteratively.
fn poisson_pmf(mu: f64, len: usize) -> Vec<f64> {
    let mut pmf = vec![0.0; len];
    if len == 0 {
        return pmf;
    }
    pmf[0] = (-mu).exp();
    for k in 1..len {
        pmf[k] = pmf[k - 1] * mu / k as f64;
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::ln_inv_gap;

    #[test]
    fn unit_capacity_matches_closed_form() {
        for lambda in [0.1, 0.5, 0.75, 0.9, 1.0 - 1.0 / 1024.0] {
            let sol = solve(1, lambda);
            assert!(sol.converged, "lambda = {lambda}");
            let expected = ln_inv_gap(lambda) - lambda;
            assert!(
                (sol.pool_per_bin - expected).abs() < 1e-8,
                "lambda = {lambda}: {} vs {expected}",
                sol.pool_per_bin
            );
            // c = 1: bins are always empty at the start of a round.
            assert!((sol.load_distribution[0] - 1.0).abs() < 1e-9);
            assert!(sol.buffered_per_bin.abs() < 1e-9);
        }
    }

    #[test]
    fn lambda_zero_is_empty_system() {
        let sol = solve(3, 0.0);
        assert!(sol.converged);
        assert_eq!(sol.pool_per_bin, 0.0);
        assert_eq!(sol.mean_wait, None);
        assert!((sol.load_distribution[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_equals_lambda_at_stationarity() {
        for (c, lambda) in [(1u32, 0.75), (2, 0.75), (3, 0.9375), (4, 0.5)] {
            let sol = solve(c, lambda);
            assert!(sol.converged);
            assert!(
                (sol.throughput - lambda).abs() < 1e-6,
                "c={c}, lambda={lambda}: throughput {}",
                sol.throughput
            );
        }
    }

    #[test]
    fn pool_decreases_with_capacity() {
        let lambda = 1.0 - 1.0 / 1024.0;
        let mut prev = f64::INFINITY;
        for c in 1..=5 {
            let sol = solve(c, lambda);
            assert!(sol.pool_per_bin < prev, "c = {c}");
            prev = sol.pool_per_bin;
        }
    }

    #[test]
    fn load_distribution_is_a_distribution() {
        for (c, lambda) in [(2u32, 0.75), (5, 0.9375)] {
            let sol = solve(c, lambda);
            let total: f64 = sol.load_distribution.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "c={c}: sums to {total}");
            assert!(sol.load_distribution.iter().all(|&q| q >= 0.0));
            assert_eq!(sol.load_distribution.len(), c as usize);
        }
    }

    #[test]
    fn mean_wait_has_interior_minimum_in_c_for_heavy_lambda() {
        // The sweet-spot phenomenon appears in the mean-field model too.
        let lambda = 1.0 - 1.0 / 1024.0;
        let waits: Vec<f64> = (1..=6)
            .map(|c| solve(c, lambda).mean_wait.unwrap())
            .collect();
        let min_idx = waits
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(min_idx >= 1, "minimum at c = {}: {waits:?}", min_idx + 1);
        assert!(min_idx <= 4, "minimum at c = {}: {waits:?}", min_idx + 1);
    }

    #[test]
    fn mean_wait_exceeds_one_at_positive_load() {
        // Every ball spends at least the round in which it is served.
        let sol = solve(2, 0.75);
        assert!(sol.mean_wait.unwrap() > 0.5);
    }

    #[test]
    fn pool_stays_below_section5_envelope() {
        use crate::fits::normalized_pool_fit;
        for (c, lambda) in [
            (1u32, 0.75),
            (2, 0.75),
            (3, 0.9375),
            (2, 1.0 - 1.0 / 1024.0),
        ] {
            let sol = solve(c, lambda);
            // Envelope counts the pool only; the fit has a +1 headroom.
            assert!(
                sol.pool_per_bin < normalized_pool_fit(c, lambda),
                "c={c}, lambda={lambda}"
            );
        }
    }

    #[test]
    fn mixed_single_class_equals_uniform() {
        for (c, lambda) in [(1u32, 0.75), (3, 0.9375)] {
            let uniform = solve(c, lambda);
            let mixed = solve_mixed_classes(&[(c, 1.0)], lambda);
            assert!((uniform.pool_per_bin - mixed.pool_per_bin).abs() < 1e-12);
            assert!((uniform.buffered_per_bin - mixed.buffered_per_bin).abs() < 1e-12);
            assert_eq!(uniform.mean_wait, mixed.mean_wait);
        }
    }

    #[test]
    fn mixture_pool_sits_between_pure_systems() {
        let lambda = 0.9375;
        let pure1 = solve(1, lambda).pool_per_bin;
        let pure3 = solve(3, lambda).pool_per_bin;
        let mix = solve_mixed_classes(&[(1, 0.5), (3, 0.5)], lambda).pool_per_bin;
        assert!(mix < pure1, "mixture {mix} vs pure c=1 {pure1}");
        assert!(mix > pure3, "mixture {mix} vs pure c=3 {pure3}");
    }

    #[test]
    fn mixture_throughput_equals_lambda() {
        let sol = solve_mixed_classes(&[(1, 0.25), (2, 0.5), (4, 0.25)], 0.75);
        assert!(sol.converged);
        assert!((sol.throughput - 0.75).abs() < 1e-6);
        assert_eq!(sol.class_load_distributions.len(), 3);
        for (dist, cap) in sol.class_load_distributions.iter().zip([1usize, 2, 4]) {
            assert_eq!(dist.len(), cap);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn mixture_rejects_bad_fractions() {
        solve_mixed_classes(&[(1, 0.5), (2, 0.4)], 0.5);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let pmf = poisson_pmf(3.0, 60);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Mode near mu.
        assert!(pmf[3] > pmf[10]);
    }

    #[test]
    #[should_panic(expected = "capacities must be")]
    fn zero_capacity_panics() {
        solve(0, 0.5);
    }
}
