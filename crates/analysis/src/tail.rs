//! Tail bounds from Appendix A (Lemmas 8–11).
//!
//! These are the probabilistic tools the proofs use; the test suite also
//! uses them to sanity-check the simulator (e.g. the measured number of
//! empty bins respects Lemma 10's concentration).

/// Lemma 8 (Chernoff, `2^{−R}` form): for independent Bernoulli variables
/// with sum `X`, `Pr[X ≥ R] ≤ 2^{−R}` whenever `R ≥ 2e·E[X]`.
///
/// Returns the bound `2^{−R}`, or `None` if the precondition
/// `R ≥ 2e·mean` does not hold (the lemma is silent there).
///
/// # Examples
///
/// ```
/// use iba_analysis::tail::chernoff_2r;
/// assert!(chernoff_2r(60.0, 10.0).unwrap() < 1e-18);
/// assert_eq!(chernoff_2r(5.0, 10.0), None); // precondition violated
/// ```
pub fn chernoff_2r(r: f64, mean: f64) -> Option<f64> {
    if r >= 2.0 * std::f64::consts::E * mean {
        Some(2.0f64.powf(-r))
    } else {
        None
    }
}

/// Lemma 9 (multiplicative Chernoff): `Pr[X ≥ (1+δ)·μ] ≤ e^{−δ²μ/(2+δ)}`
/// for independent Bernoulli sums with mean `μ` and any `δ > 0`.
///
/// # Panics
///
/// Panics if `δ ≤ 0` or `μ < 0`.
pub fn chernoff_mult(delta: f64, mu: f64) -> f64 {
    assert!(delta > 0.0, "delta must be positive");
    assert!(mu >= 0.0, "mean must be non-negative");
    (-(delta * delta * mu) / (2.0 + delta)).exp()
}

/// Lemma 10 (empty-bins concentration, Motwani–Raghavan Thm 4.18): when
/// allocating `m` balls into `n` bins and `Z` counts empty bins,
/// `Pr[|Z − E[Z]| ≥ t] ≤ 2·exp(−t²·(n − 1/2)/(n² − E[Z]²))`.
///
/// Returns that bound (clamped to 1).
///
/// # Panics
///
/// Panics if `n = 0` or `t < 0`.
pub fn empty_bins_tail(n: usize, m: u64, t: f64) -> f64 {
    assert!(n > 0, "need at least one bin");
    assert!(t >= 0.0, "deviation must be non-negative");
    let n_f = n as f64;
    let ez = crate::math::expected_empty_bins(n, m);
    let denom = n_f * n_f - ez * ez;
    if denom <= 0.0 {
        // n = 1 and m = 0: Z is deterministic; any positive deviation has
        // probability 0.
        return if t > 0.0 { 0.0 } else { 1.0 };
    }
    (2.0 * (-(t * t) * (n_f - 0.5) / denom).exp()).min(1.0)
}

/// Exact binomial tail `Pr[B(n, p) ≥ k]`, computed in log space for
/// numerical stability. This is the majorizing distribution of Lemma 11.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn binomial_tail_at_least(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let ln_p = p.ln();
    let ln_q = (-p).ln_1p(); // ln(1 − p), stable for small p
    let mut total = 0.0f64;
    for i in k..=n {
        let ln_term = ln_choose(n, i) + i as f64 * ln_p + (n - i) as f64 * ln_q;
        total += ln_term.exp();
    }
    total.min(1.0)
}

/// `ln C(n, k)` via the log-gamma function (Stirling-series
/// implementation, accurate to ~1e-10 for the arguments used here).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` via Stirling's series for large `n`, exact summation below 32.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 32 {
        let mut acc = 0.0;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        return acc;
    }
    let x = n as f64 + 1.0; // ln Γ(x) with x = n + 1
    let ln_2pi = (2.0 * std::f64::consts::PI).ln();
    (x - 0.5) * x.ln() - x + 0.5 * ln_2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
        + 1.0 / (1260.0 * x.powi(5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_2r_respects_precondition() {
        assert!(chernoff_2r(2.0 * std::f64::consts::E * 5.0, 5.0).is_some());
        assert!(chernoff_2r(2.0 * std::f64::consts::E * 5.0 - 0.01, 5.0).is_none());
        assert!((chernoff_2r(10.0, 0.1).unwrap() - 2.0f64.powi(-10)).abs() < 1e-15);
    }

    #[test]
    fn chernoff_mult_matches_formula() {
        // δ = 1, μ = 10: e^{-10/3}.
        let b = chernoff_mult(1.0, 10.0);
        assert!((b - (-10.0 / 3.0f64).exp()).abs() < 1e-12);
        // Larger μ gives smaller bound.
        assert!(chernoff_mult(0.5, 100.0) < chernoff_mult(0.5, 10.0));
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn chernoff_mult_rejects_zero_delta() {
        chernoff_mult(0.0, 1.0);
    }

    #[test]
    fn empty_bins_tail_shapes() {
        // Zero deviation: trivial bound 1 (clamped).
        assert_eq!(empty_bins_tail(100, 100, 0.0), 1.0);
        // Large deviation: tiny bound.
        assert!(empty_bins_tail(1000, 1000, 300.0) < 1e-10);
        // Monotone decreasing in t.
        let a = empty_bins_tail(1000, 1000, 50.0);
        let b = empty_bins_tail(1000, 1000, 100.0);
        assert!(b < a);
    }

    #[test]
    fn ln_factorial_known_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
        // Continuity across the Stirling switchover at 32.
        let below = ln_factorial(31) + 32.0f64.ln();
        let above = ln_factorial(32);
        assert!((below - above).abs() < 1e-8);
        // 100! begins with ln value ≈ 363.739...
        assert!((ln_factorial(100) - 363.73937555556347).abs() < 1e-6);
    }

    #[test]
    fn ln_choose_known_values() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 5) - 252.0f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert_eq!(ln_choose(7, 0), 0.0);
    }

    #[test]
    fn binomial_tail_exact_small_cases() {
        // B(2, 0.5): P[X >= 1] = 3/4, P[X >= 2] = 1/4.
        assert!((binomial_tail_at_least(2, 0.5, 1) - 0.75).abs() < 1e-12);
        assert!((binomial_tail_at_least(2, 0.5, 2) - 0.25).abs() < 1e-12);
        assert_eq!(binomial_tail_at_least(2, 0.5, 0), 1.0);
        assert_eq!(binomial_tail_at_least(2, 0.5, 3), 0.0);
    }

    #[test]
    fn binomial_tail_edge_probabilities() {
        assert_eq!(binomial_tail_at_least(10, 0.0, 1), 0.0);
        assert_eq!(binomial_tail_at_least(10, 1.0, 10), 1.0);
    }

    #[test]
    fn binomial_tail_is_monotone_in_k() {
        let mut prev = 1.1;
        for k in 0..=50 {
            let t = binomial_tail_at_least(50, 0.3, k);
            assert!(t <= prev + 1e-12, "k = {k}");
            prev = t;
        }
    }

    #[test]
    fn binomial_tail_large_n_stays_finite() {
        // n = 10 000, p = 0.1, k = mean + 5σ: tail must be small but > 0.
        let t = binomial_tail_at_least(10_000, 0.1, 1_150);
        assert!(t > 0.0 && t < 1e-5, "{t}");
    }

    #[test]
    fn lemma8_dominates_exact_binomial_tail() {
        // The Chernoff bound must upper-bound the exact tail where valid.
        let n = 1000u64;
        let p = 0.01;
        let mean = n as f64 * p; // 10
        let r = 60.0; // >= 2e·10 ≈ 54.4
        let bound = chernoff_2r(r, mean).unwrap();
        let exact = binomial_tail_at_least(n, p, 60);
        assert!(exact <= bound, "exact {exact} > bound {bound}");
    }
}
