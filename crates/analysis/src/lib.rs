//! Theory companion for *"Infinite Balanced Allocation via Finite
//! Capacities"* (ICDCS 2021).
//!
//! Pure, dependency-free numeric implementations of every closed-form
//! expression the paper states, so experiments can compare measured
//! behavior against theory:
//!
//! - [`math`] — numerically careful building blocks
//!   (`ln(1/(1−λ))`, `log₂ log₂ n`, …).
//! - [`bounds`] — the high-probability bounds of **Theorem 1** (unit
//!   capacity) and **Theorem 2** (general capacity) on pool size and
//!   waiting time.
//! - [`fits`] — the **Section V** empirical fit curves (the dashed lines of
//!   Figures 4 and 5), which drop the analysis' unoptimized constants.
//! - [`meanfield`] — an exact `n → ∞` fixed-point model of CAPPED(c, λ)
//!   (the differential-equation method of the related work), predicting
//!   the stationary pool, the load distribution and — via Little's law —
//!   the mean waiting time, independently of the simulator.
//! - [`sweetspot`] — the sweet-spot capacity `c* = Θ(√ln(1/(1−λ)))`
//!   suggested by the theorems, and its exact integer minimizer under the
//!   empirical waiting-time fit.
//! - [`tail`] — the tail bounds of Appendix A (Lemmas 8–11): the `2^{−R}`
//!   Chernoff variant, the multiplicative Chernoff bound, the empty-bins
//!   concentration bound and exact binomial tails.
//! - [`verify`] — measured-vs-theory comparison records used by the
//!   integration tests and by EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! use iba_analysis::{bounds, fits, sweetspot};
//!
//! let n = 1 << 15;
//! let heavy = 1.0 - 2.0f64.powi(-20); // λ = 1 − 2⁻²⁰
//! // Theorem 2's pool bound scales like (4/c)·ln(1/(1−λ))·n + O(c·n), so
//! // for heavy traffic a larger capacity lowers the bound:
//! let bound_c1 = bounds::theorem2_pool_bound(n, 1, heavy);
//! let bound_c3 = bounds::theorem2_pool_bound(n, 3, heavy);
//! assert!(bound_c3 < bound_c1);
//! // The Section-V fit predicts the measured pool much more tightly:
//! assert!(fits::pool_size_fit(n, 3, heavy) < bound_c3);
//! // And the sweet spot for λ = 1 − 2⁻¹⁰ sits at c ≈ √ln(1024) ≈ 2.6:
//! let c_star = sweetspot::optimal_capacity(1.0 - 1.0 / 1024.0, n);
//! assert!((2..=4).contains(&c_star));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod exact;
pub mod fits;
pub mod math;
pub mod meanfield;
pub mod sweetspot;
pub mod tail;
pub mod verify;
