//! The sweet-spot capacity `c* = Θ(√ln(1/(1−λ)))`.
//!
//! Theorem 2's waiting-time bound trades a `≈ L/c` allocation delay
//! (`L = ln(1/(1−λ))`) against an `O(c)` buffer-drain delay; balancing the
//! two gives `c* = Θ(√L)`, the "sweet spot" the paper highlights in the
//! abstract and investigates empirically in Section V (observing minima at
//! `c ∈ {2, 3}` for its λ values).

use crate::fits::waiting_time_fit;
use crate::math::ln_inv_gap;

/// The continuous sweet spot `√ln(1/(1−λ))` from balancing `L/c` against
/// `c` in the waiting-time fit.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)`.
pub fn continuous_sweet_spot(lambda: f64) -> f64 {
    ln_inv_gap(lambda).sqrt()
}

/// The integer capacity `c ≥ 1` minimizing the Section-V waiting-time fit
/// `ln(1/(1−λ))/c + log log n + c` (ties toward the smaller capacity).
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)`.
pub fn optimal_capacity(lambda: f64, n: usize) -> u32 {
    // The continuous optimum is √L; the integer optimum is one of its
    // neighbors. Search a safe window around it.
    let c_star = continuous_sweet_spot(lambda);
    let hi = (c_star.ceil() as u32 + 2).max(3);
    (1..=hi)
        .min_by(|&a, &b| {
            waiting_time_fit(n, a, lambda)
                .partial_cmp(&waiting_time_fit(n, b, lambda))
                .unwrap()
        })
        .unwrap()
}

/// The integer capacity minimizing an arbitrary measured waiting-time
/// profile: `profile[i]` is the waiting time measured for capacity `i + 1`.
/// Returns the 1-based capacity (ties toward the smaller capacity).
///
/// # Panics
///
/// Panics if `profile` is empty or contains a NaN.
pub fn argmin_capacity(profile: &[f64]) -> u32 {
    assert!(!profile.is_empty(), "profile must not be empty");
    let idx = profile
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.partial_cmp(b.1)
                .expect("waiting-time profile must not contain NaN")
        })
        .unwrap()
        .0;
    idx as u32 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_sweet_spot_values() {
        assert_eq!(continuous_sweet_spot(0.0), 0.0);
        // λ = 1 − 2⁻¹⁰: √(10 ln 2) ≈ 2.63.
        let c = continuous_sweet_spot(1.0 - 1.0 / 1024.0);
        assert!((c - (10.0 * 2.0f64.ln()).sqrt()).abs() < 1e-9);
        assert!((2.5..2.8).contains(&c));
    }

    #[test]
    fn optimal_capacity_matches_paper_observations() {
        let n = 1 << 15;
        // Paper: minima around c = 2 and c = 3 for the λ values of Fig. 5.
        assert_eq!(optimal_capacity(1.0 - 1.0 / 4.0, n), 1); // L = ln4 ≈ 1.39
        let c10 = optimal_capacity(1.0 - 1.0 / 1024.0, n); // L ≈ 6.93
        assert!((2..=3).contains(&c10), "{c10}");
        let c13 = optimal_capacity(1.0 - 1.0 / 8192.0, n); // L ≈ 9.01
        assert!((2..=4).contains(&c13), "{c13}");
    }

    #[test]
    fn optimal_capacity_grows_with_lambda() {
        let n = 1 << 15;
        // For λ = 1 − 2⁻³⁰, L ≈ 20.8 and c* ≈ 4.6.
        let extreme = 1.0 - 2.0f64.powi(-30);
        let c = optimal_capacity(extreme, n);
        assert!(c >= 4, "{c}");
        assert!(c as f64 <= continuous_sweet_spot(extreme) + 2.0);
    }

    #[test]
    fn argmin_capacity_basics() {
        assert_eq!(argmin_capacity(&[5.0]), 1);
        assert_eq!(argmin_capacity(&[5.0, 3.0, 4.0]), 2);
        // Ties resolve toward the smaller capacity.
        assert_eq!(argmin_capacity(&[3.0, 3.0, 4.0]), 1);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn argmin_empty_panics() {
        argmin_capacity(&[]);
    }
}
