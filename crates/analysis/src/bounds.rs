//! The high-probability bounds of Theorems 1 and 2.
//!
//! The paper deliberately does not optimize constants ("the urge to keep the
//! analysis simple and clean"), so these bounds are loose by design —
//! Section V observes the measured pool is roughly a factor 4 below the
//! Theorem-2 bound. The `O(·)` terms are instantiated with the explicit
//! constants the proofs yield:
//!
//! - Theorem 1 pool: `2·ln(1/(1−λ))·n + 4n` (explicit in the statement).
//! - Theorem 1 waiting: `(2·ln(1/(1−λ)) + 4)/(1 − e⁻¹) + log log n + O(1)`,
//!   where the proof's `O(1)` is `19 + i*` from Lemmas 4 and 5; we charge a
//!   constant `25`.
//! - Theorem 2 pool: `(4/c)·ln(1/(1−λ))·n + O(c·n)`; the coupling uses
//!   `m* = (2/c)·ln(1/(1−λ))·n + 6c·n` and the bound is `2m*`, so the
//!   `O(c·n)` term is `12·c·n`.
//! - Theorem 2 waiting: `4·ln(1/(1−λ))/(c·(1−e⁻¹)) + log log n + O(c)`;
//!   the `O(c)` covers the buffer-drain delay plus the Lemma-4/5 constants;
//!   we charge `c + 25`.

use crate::math::{ln_inv_gap, log2_log2};

/// Theorem 1 (1): pool-size bound for CAPPED(1, λ):
/// `2·ln(1/(1−λ))·n + 4n`, holding with probability ≥ 1 − 2^{−2n} at any
/// round.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)`.
pub fn theorem1_pool_bound(n: usize, lambda: f64) -> f64 {
    let n = n as f64;
    2.0 * ln_inv_gap(lambda) * n + 4.0 * n
}

/// Theorem 1 (2): waiting-time bound for CAPPED(1, λ):
/// `(2·ln(1/(1−λ)) + 4)/(1 − e⁻¹) + log log n + O(1)`, holding with
/// probability ≥ 1 − n⁻² for any ball. The `O(1)` is instantiated as 25
/// (19 rounds from Lemma 4 plus the layered-induction constant of
/// Lemma 5).
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)`.
pub fn theorem1_waiting_bound(n: usize, lambda: f64) -> f64 {
    let one_minus_inv_e = 1.0 - (-1.0f64).exp();
    (2.0 * ln_inv_gap(lambda) + 4.0) / one_minus_inv_e + log2_log2(n) + 25.0
}

/// Theorem 2 (1): pool-size bound for CAPPED(c, λ):
/// `(4/c)·ln(1/(1−λ))·n + 12·c·n` (the `O(c·n)` instantiated from
/// `2m* = (4/c)·ln(1/(1−λ))·n + 12·c·n`), holding with probability
/// ≥ 1 − 2^{−2n} at any round.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)` or `c = 0`.
pub fn theorem2_pool_bound(n: usize, c: u32, lambda: f64) -> f64 {
    assert!(c >= 1, "capacity must be at least 1");
    let n = n as f64;
    let c = c as f64;
    (4.0 / c) * ln_inv_gap(lambda) * n + 12.0 * c * n
}

/// Theorem 2 (2): waiting-time bound for CAPPED(c, λ):
/// `4·ln(1/(1−λ))/(c·(1−e⁻¹)) + log log n + O(c)` with the `O(c)`
/// instantiated as `c + 25` (buffer-drain delay plus the Lemma-4/5
/// constants), holding with probability ≥ 1 − n⁻² for any ball.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)` or `c = 0`.
pub fn theorem2_waiting_bound(n: usize, c: u32, lambda: f64) -> f64 {
    assert!(c >= 1, "capacity must be at least 1");
    let one_minus_inv_e = 1.0 - (-1.0f64).exp();
    let c = c as f64;
    4.0 * ln_inv_gap(lambda) / (c * one_minus_inv_e) + log2_log2(n) + c + 25.0
}

/// The PODC'16 1-choice waiting/maximum-load bound the paper compares
/// against: `O((1/(1−λ))·log(n/(1−λ)))`. Returned with unit constant, for
/// shape comparisons only.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)`.
pub fn podc16_greedy1_bound(n: usize, lambda: f64) -> f64 {
    assert!((0.0..1.0).contains(&lambda), "lambda must be in [0, 1)");
    let gap = 1.0 - lambda;
    (1.0 / gap) * ((n as f64) / gap).ln()
}

/// The PODC'16 2-choice bound: `O(log(n/(1−λ)))`, unit constant.
///
/// # Panics
///
/// Panics if `λ ∉ [0, 1)`.
pub fn podc16_greedy2_bound(n: usize, lambda: f64) -> f64 {
    assert!((0.0..1.0).contains(&lambda), "lambda must be in [0, 1)");
    ((n as f64) / (1.0 - lambda)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 15;

    #[test]
    fn theorem1_pool_at_known_rates() {
        // λ = 0: bound is 4n.
        assert_eq!(theorem1_pool_bound(N, 0.0), 4.0 * N as f64);
        // λ = 0.75: 2·ln4·n + 4n ≈ 2.772n + 4n.
        let b = theorem1_pool_bound(N, 0.75);
        assert!((b / N as f64 - (2.0 * 4.0f64.ln() + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn theorem2_with_c1_dominates_theorem1() {
        // Theorem 2's pool constants are strictly weaker (4 vs 2 on the log
        // term, 12 vs 4 on the additive term), so its c = 1 pool bound
        // dominates Theorem 1's everywhere. For the waiting time the
        // doubled log coefficient dominates once ln(1/(1−λ)) ≥ 2.
        for lambda in [0.0, 0.5, 0.75, 1.0 - 1.0 / 1024.0] {
            assert!(theorem2_pool_bound(N, 1, lambda) >= theorem1_pool_bound(N, lambda));
        }
        for lambda in [0.9, 1.0 - 1.0 / 1024.0] {
            assert!(theorem2_waiting_bound(N, 1, lambda) >= theorem1_waiting_bound(N, lambda));
        }
    }

    #[test]
    fn pool_bound_decreases_in_c_for_large_lambda() {
        // For λ close to 1 the (4/c)·ln term dominates and larger c helps.
        let lambda = 1.0 - 1.0 / (1 << 13) as f64;
        let b1 = theorem2_pool_bound(N, 1, lambda);
        let b2 = theorem2_pool_bound(N, 2, lambda);
        assert!(b2 < b1);
    }

    #[test]
    fn pool_bound_grows_in_c_for_small_lambda() {
        // For small λ the O(c·n) term dominates.
        let b1 = theorem2_pool_bound(N, 1, 0.5);
        let b4 = theorem2_pool_bound(N, 4, 0.5);
        assert!(b4 > b1);
    }

    #[test]
    fn waiting_bound_has_interior_minimum_for_large_lambda() {
        // Theorem 2's waiting bound trades 4L/(c(1−1/e)) against +c, so for
        // large λ some c > 1 must beat c = 1.
        let lambda = 1.0 - 1.0 / 1024.0;
        let w: Vec<f64> = (1..=8)
            .map(|c| theorem2_waiting_bound(N, c, lambda))
            .collect();
        let min_idx = w
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(min_idx > 0, "minimum should not sit at c = 1: {w:?}");
        assert!(min_idx < 7, "minimum should be interior: {w:?}");
    }

    #[test]
    fn waiting_bound_grows_loglog_in_n() {
        let lambda = 0.75;
        let small = theorem2_waiting_bound(1 << 10, 2, lambda);
        let large = theorem2_waiting_bound(1 << 20, 2, lambda);
        // Doubling the exponent adds log2(20)-log2(10) = 1 to log log n.
        assert!(large > small);
        assert!(large - small < 1.5);
    }

    #[test]
    fn podc16_bounds_reflect_paper_comparison() {
        // For constant λ the PODC'16 bounds are Θ(log n), far above
        // CAPPED's log log n + O(1)-style bound at large n.
        let lambda = 0.75;
        let n = 1 << 20;
        assert!(podc16_greedy1_bound(n, lambda) > podc16_greedy2_bound(n, lambda));
        // Shape: greedy1 bound explodes as λ → 1, greedy2 only log-grows.
        let close = 1.0 - 1.0 / 1024.0;
        let ratio1 = podc16_greedy1_bound(n, close) / podc16_greedy1_bound(n, lambda);
        let ratio2 = podc16_greedy2_bound(n, close) / podc16_greedy2_bound(n, lambda);
        assert!(ratio1 > 100.0);
        assert!(ratio2 < 2.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        theorem2_pool_bound(10, 0, 0.5);
    }
}
